#ifndef PHRASEMINE_TEXT_SYNTHETIC_H_
#define PHRASEMINE_TEXT_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "text/corpus.h"

namespace phrasemine {

/// Knobs for the synthetic topical corpus generator. Defaults approximate a
/// small newswire corpus; use ReutersLike()/PubmedLike() for the
/// paper-matched presets.
struct SyntheticCorpusOptions {
  /// PRNG seed; the same options always produce the same corpus.
  uint64_t seed = 42;

  /// Number of documents to generate (|D|).
  std::size_t num_docs = 2000;

  /// Number of latent topics. Each document draws 1..topics_per_doc_max of
  /// them, Zipf-weighted so some topics dominate (as in real news corpora).
  std::size_t num_topics = 10;

  /// Topic-specific vocabulary size (distinct words owned by each topic).
  std::size_t topic_vocab = 300;

  /// Corpus-wide shared (background) vocabulary size.
  std::size_t shared_vocab = 1500;

  /// Number of stopwords; stopwords are emitted at stopword_rate and are
  /// deliberately frequent everywhere so that raw-frequency phrase scoring
  /// would rank stopword n-grams first (the pathology Eq. 1 normalizes away).
  std::size_t num_stopwords = 60;

  /// Seed collocations per topic: multi-word phrases (2..6 words) injected
  /// verbatim into documents of that topic. These are the "interesting
  /// phrases" the miners should recover.
  std::size_t phrases_per_topic = 40;

  /// Document length bounds (tokens), drawn uniformly.
  std::size_t min_doc_tokens = 60;
  std::size_t max_doc_tokens = 180;

  /// Per-position emission probabilities.
  double stopword_rate = 0.35;
  double phrase_rate = 0.08;
  double shared_rate = 0.20;

  /// Zipf exponent for word and topic popularity.
  double zipf_s = 1.05;

  /// Fraction of the topic vocabulary each document actually draws its
  /// organic topical words from (a per-document "subtopic window" at a
  /// random rotation). 1.0 disables windowing. Values < 1 make word
  /// co-occurrence partial -- as in real corpora, where even strongly
  /// topical words share only part of their document sets -- which keeps
  /// the conditional probabilities P(q|p) of Eq. 13 away from the
  /// degenerate all-1.0 regime.
  double subtopic_window = 1.0;

  /// Probability that a topical draw (word or phrase) ignores the window
  /// and uses the whole topic distribution. Softens the window clusters:
  /// without leakage, documents sharing a window are near-duplicates in
  /// their rare-phrase content, which creates unrealistically many phrases
  /// perfectly nested inside every query word's document set.
  double window_leak = 0.0;

  /// Maximum topics mixed into one document.
  std::size_t topics_per_doc_max = 2;

  /// When true, each document gets "topic:<name>" and "year:<y>" facets so
  /// metadata-facet queries (Table 1 of the paper) can be exercised.
  bool add_facets = true;
};

/// Generates reproducible topical corpora whose statistics (Zipfian word
/// frequencies, topic-correlated collocations, stopword floods) mirror the
/// corpora used in the paper's evaluation. See DESIGN.md section 3 for the
/// substitution argument.
class SyntheticCorpusGenerator {
 public:
  explicit SyntheticCorpusGenerator(SyntheticCorpusOptions options);

  /// Generates the corpus. May be called once per generator instance.
  Corpus Generate();

  /// Preset shaped like Reuters-21578: 21,578 documents, ~15k vocabulary.
  static SyntheticCorpusOptions ReutersLike();

  /// Preset shaped like the Pubmed abstracts collection. The paper used 655k
  /// abstracts; the default here is scaled to 60k for laptop-budget runs and
  /// `num_docs` may be raised to the full size.
  static SyntheticCorpusOptions PubmedLike(std::size_t num_docs = 60000);

  /// The injected seed collocations, one vector of word strings per phrase,
  /// available after Generate(). Tests use these as recall targets and the
  /// benchmark harnesses harvest query words from them.
  const std::vector<std::vector<std::string>>& seed_phrases() const {
    return seed_phrases_;
  }

  /// Topic index owning each seed phrase (parallel to seed_phrases()).
  const std::vector<std::size_t>& seed_phrase_topics() const {
    return seed_phrase_topics_;
  }

 private:
  /// Deterministically synthesizes a readable pseudo-word unique across the
  /// generated vocabulary ("zorbani", "keluma", ...).
  std::string MakeWord(Rng& rng);

  SyntheticCorpusOptions options_;
  std::vector<std::vector<std::string>> seed_phrases_;
  std::vector<std::size_t> seed_phrase_topics_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_TEXT_SYNTHETIC_H_
