#ifndef PHRASEMINE_TEXT_TYPES_H_
#define PHRASEMINE_TEXT_TYPES_H_

#include <cstdint>

namespace phrasemine {

/// Identifier of a document within a Corpus; equal to its position.
using DocId = uint32_t;

/// Identifier of a term (word or metadata facet) within a Vocabulary.
using TermId = uint32_t;

/// Identifier of a phrase within a PhraseDictionary. Phrase IDs double as
/// offsets into the fixed-slot phrase list file (Section 4.2.1 of the paper).
using PhraseId = uint32_t;

/// Sentinel for "no term" / "no phrase".
inline constexpr TermId kInvalidTermId = UINT32_MAX;
inline constexpr PhraseId kInvalidPhraseId = UINT32_MAX;

}  // namespace phrasemine

#endif  // PHRASEMINE_TEXT_TYPES_H_
