#include "text/vocabulary.h"

#include "common/check.h"

namespace phrasemine {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  if (it == ids_.end()) return kInvalidTermId;
  return it->second;
}

const std::string& Vocabulary::TermText(TermId id) const {
  PM_CHECK(id < terms_.size());
  return terms_[id];
}

void Vocabulary::Serialize(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(terms_.size()));
  for (const std::string& t : terms_) {
    writer->PutString(t);
  }
}

Result<Vocabulary> Vocabulary::Deserialize(BinaryReader* reader) {
  uint32_t n = 0;
  Status s = reader->GetU32(&n);
  if (!s.ok()) return s;
  Vocabulary vocab;
  vocab.terms_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string term;
    s = reader->GetString(&term);
    if (!s.ok()) return s;
    vocab.terms_.push_back(std::move(term));
    vocab.ids_.emplace(vocab.terms_.back(), i);
  }
  return vocab;
}

}  // namespace phrasemine
