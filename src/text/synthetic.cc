#include "text/synthetic.h"

#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace phrasemine {

namespace {

// Syllable inventory for readable pseudo-words. Deterministic composition of
// 2-4 syllables gives ~10^6 distinct candidates, far more than any preset's
// vocabulary, so collisions are rare and resolved by re-drawing.
constexpr const char* kOnsets[] = {"b",  "d",  "f",  "g",  "k",  "l",
                                   "m",  "n",  "p",  "r",  "s",  "t",
                                   "v",  "z",  "ch", "st", "tr", "pl"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};
constexpr const char* kCodas[] = {"", "", "", "n", "r", "s", "l", "x"};

}  // namespace

SyntheticCorpusGenerator::SyntheticCorpusGenerator(
    SyntheticCorpusOptions options)
    : options_(std::move(options)) {
  PM_CHECK(options_.num_topics >= 1);
  PM_CHECK(options_.min_doc_tokens >= 8);
  PM_CHECK(options_.max_doc_tokens >= options_.min_doc_tokens);
}

std::string SyntheticCorpusGenerator::MakeWord(Rng& rng) {
  const std::size_t syllables = 2 + rng.NextBelow(3);
  std::string word;
  for (std::size_t i = 0; i < syllables; ++i) {
    word += kOnsets[rng.NextBelow(std::size(kOnsets))];
    word += kNuclei[rng.NextBelow(std::size(kNuclei))];
    if (i + 1 == syllables) {
      word += kCodas[rng.NextBelow(std::size(kCodas))];
    }
  }
  return word;
}

SyntheticCorpusOptions SyntheticCorpusGenerator::ReutersLike() {
  SyntheticCorpusOptions o;
  o.seed = 20140324;  // EDBT 2014 opening day.
  o.num_docs = 21578;
  o.num_topics = 25;
  o.topic_vocab = 500;
  o.shared_vocab = 2200;
  o.num_stopwords = 120;
  o.phrases_per_topic = 60;
  o.min_doc_tokens = 50;
  o.max_doc_tokens = 200;
  o.stopword_rate = 0.35;
  o.phrase_rate = 0.08;
  o.shared_rate = 0.22;
  o.zipf_s = 1.05;
  o.topics_per_doc_max = 2;
  o.subtopic_window = 0.25;
  o.window_leak = 0.35;
  return o;
}

SyntheticCorpusOptions SyntheticCorpusGenerator::PubmedLike(
    std::size_t num_docs) {
  SyntheticCorpusOptions o;
  o.seed = 655000;
  o.num_docs = num_docs;
  o.num_topics = 60;
  o.topic_vocab = 2200;
  o.shared_vocab = 36000;
  o.num_stopwords = 150;
  o.phrases_per_topic = 100;
  o.min_doc_tokens = 80;
  o.max_doc_tokens = 260;
  o.stopword_rate = 0.30;
  // Abstracts are single-topic and collocation-dense: at most two topics
  // per document and a higher phrase-injection rate. (Calibrated so the
  // query-phrase correlations -- which the independence assumption of
  // Section 4.1.1 relies on -- are as strong as in the paper's corpora.)
  o.phrase_rate = 0.10;
  o.shared_rate = 0.25;
  o.zipf_s = 1.02;
  o.topics_per_doc_max = 2;
  o.subtopic_window = 0.25;
  o.window_leak = 0.35;
  return o;
}

Corpus SyntheticCorpusGenerator::Generate() {
  Rng rng(options_.seed);
  Corpus corpus;

  // --- Vocabulary synthesis -------------------------------------------------
  std::unordered_set<std::string> used;
  auto fresh_word = [&](const char* prefix) {
    for (;;) {
      std::string w = MakeWord(rng);
      if (used.insert(w).second) return w;
      // Collision: append a disambiguating suffix and retry the insert.
      w += prefix;
      if (used.insert(w).second) return w;
    }
  };

  std::vector<std::string> stopwords;
  stopwords.reserve(options_.num_stopwords);
  for (std::size_t i = 0; i < options_.num_stopwords; ++i) {
    stopwords.push_back(fresh_word("s"));
  }
  std::vector<std::string> shared;
  shared.reserve(options_.shared_vocab);
  for (std::size_t i = 0; i < options_.shared_vocab; ++i) {
    shared.push_back(fresh_word("g"));
  }
  std::vector<std::vector<std::string>> topic_words(options_.num_topics);
  for (std::size_t t = 0; t < options_.num_topics; ++t) {
    topic_words[t].reserve(options_.topic_vocab);
    for (std::size_t i = 0; i < options_.topic_vocab; ++i) {
      topic_words[t].push_back(fresh_word("t"));
    }
  }

  // --- Seed collocations ----------------------------------------------------
  // Phrase length distribution skews short (2-3 words) with a tail to 6,
  // matching the paper's n-gram cap.
  seed_phrases_.clear();
  seed_phrase_topics_.clear();
  std::vector<std::vector<std::size_t>> topic_phrase_ids(options_.num_topics);
  // Anchor of each phrase within its topic's vocabulary circle: a phrase is
  // only injected into documents whose subtopic window covers its anchor,
  // so each phrase lives in a bounded, subtopic-coherent slice of the
  // topic's documents (as collocations do in real corpora).
  std::vector<std::size_t> phrase_anchor;
  for (std::size_t t = 0; t < options_.num_topics; ++t) {
    for (std::size_t i = 0; i < options_.phrases_per_topic; ++i) {
      const std::size_t len_draw = rng.NextBelow(10);
      const std::size_t len = len_draw < 4   ? 2
                              : len_draw < 7 ? 3
                              : len_draw < 8 ? 4
                              : len_draw < 9 ? 5
                                             : 6;
      std::vector<std::string> phrase;
      phrase.reserve(len);
      for (std::size_t j = 0; j < len; ++j) {
        // Mostly topical words; occasionally a shared word so that some seed
        // phrases straddle vocabularies like real collocations do.
        if (rng.NextBool(0.15) && !shared.empty()) {
          phrase.push_back(shared[rng.NextBelow(shared.size())]);
        } else {
          phrase.push_back(topic_words[t][rng.NextBelow(topic_words[t].size())]);
        }
      }
      topic_phrase_ids[t].push_back(seed_phrases_.size());
      seed_phrases_.push_back(std::move(phrase));
      seed_phrase_topics_.push_back(t);
      phrase_anchor.push_back(rng.NextBelow(options_.topic_vocab));
    }
  }

  // --- Samplers ---------------------------------------------------------
  const std::size_t window_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.subtopic_window *
                                  static_cast<double>(options_.topic_vocab)));
  ZipfSampler topic_sampler(options_.num_topics, options_.zipf_s);
  ZipfSampler topic_word_sampler(window_size, options_.zipf_s);
  ZipfSampler full_topic_word_sampler(options_.topic_vocab, options_.zipf_s);
  ZipfSampler shared_sampler(options_.shared_vocab, options_.zipf_s);
  ZipfSampler stop_sampler(options_.num_stopwords, options_.zipf_s);
  ZipfSampler phrase_sampler(options_.phrases_per_topic, options_.zipf_s);

  // --- Document synthesis ---------------------------------------------------
  std::vector<std::string> tokens;
  for (std::size_t d = 0; d < options_.num_docs; ++d) {
    const std::size_t num_topics_in_doc =
        1 + rng.NextBelow(options_.topics_per_doc_max);
    std::vector<std::size_t> doc_topics;
    std::vector<std::size_t> doc_windows;  // per-topic vocabulary rotation
    doc_topics.reserve(num_topics_in_doc);
    for (std::size_t i = 0; i < num_topics_in_doc; ++i) {
      doc_topics.push_back(topic_sampler.Sample(rng));
      doc_windows.push_back(rng.NextBelow(options_.topic_vocab));
    }

    const std::size_t target_len =
        options_.min_doc_tokens +
        rng.NextBelow(options_.max_doc_tokens - options_.min_doc_tokens + 1);

    tokens.clear();
    while (tokens.size() < target_len) {
      const double u = rng.NextDouble();
      const std::size_t topic_slot = rng.NextBelow(doc_topics.size());
      const std::size_t topic = doc_topics[topic_slot];
      if (u < options_.phrase_rate) {
        // Sample a phrase whose anchor lies inside this document's window,
        // or -- with probability window_leak -- any phrase of the topic
        // (rejection sampling; fall back to a topical word when the window
        // hosts none of the drawn phrases).
        bool injected = false;
        const bool leak = rng.NextBool(options_.window_leak);
        for (int attempt = 0; attempt < 8; ++attempt) {
          const std::size_t pid =
              topic_phrase_ids[topic][phrase_sampler.Sample(rng)];
          if (!leak) {
            const std::size_t rel =
                (phrase_anchor[pid] + options_.topic_vocab -
                 doc_windows[topic_slot]) %
                options_.topic_vocab;
            if (rel >= window_size) continue;
          }
          for (const std::string& w : seed_phrases_[pid]) {
            tokens.push_back(w);
          }
          injected = true;
          break;
        }
        if (!injected) {
          const std::size_t idx =
              (doc_windows[topic_slot] + topic_word_sampler.Sample(rng)) %
              options_.topic_vocab;
          tokens.push_back(topic_words[topic][idx]);
        }
      } else if (u < options_.phrase_rate + options_.stopword_rate) {
        tokens.push_back(stopwords[stop_sampler.Sample(rng)]);
      } else if (u < options_.phrase_rate + options_.stopword_rate +
                         options_.shared_rate) {
        tokens.push_back(shared[shared_sampler.Sample(rng)]);
      } else {
        // Organic topical word from this document's subtopic window, or --
        // with probability window_leak -- from the whole topic vocabulary.
        const std::size_t idx =
            rng.NextBool(options_.window_leak)
                ? full_topic_word_sampler.Sample(rng)
                : (doc_windows[topic_slot] + topic_word_sampler.Sample(rng)) %
                      options_.topic_vocab;
        tokens.push_back(topic_words[topic][idx]);
      }
    }

    std::vector<std::string> facets;
    if (options_.add_facets) {
      facets.push_back("topic:" + std::to_string(doc_topics[0]));
      facets.push_back("year:" + std::to_string(1990 + rng.NextBelow(20)));
    }
    corpus.AddTokenized(tokens, facets);
  }
  return corpus;
}

}  // namespace phrasemine
