#ifndef PHRASEMINE_OBS_TRACE_H_
#define PHRASEMINE_OBS_TRACE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace phrasemine {

/// One node of a per-query trace: a named unit of work with its wall time,
/// the counters relevant to it, and nested child spans. Built only when
/// the request opted into tracing (MineOptions::trace); every layer keeps
/// a plain `TraceSpan*` that is null when tracing is off, and the null-safe
/// helpers below make the off path a single pointer test -- no
/// allocations, no atomics, no branches beyond the check.
///
/// Children are pointer-backed so a span pointer stays valid while
/// siblings are appended (the sharded scatter pre-creates one child per
/// shard and lets the pool workers fill them concurrently -- each worker
/// touches only its own node, so no synchronization is needed); shared
/// ownership lets a mine's trace root (MineResult::trace) slot directly
/// under the owning service request's span.
struct TraceSpan {
  std::string name;
  /// Free-form annotation (the plan span carries PlanDecision::ToString()).
  std::string detail;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::shared_ptr<TraceSpan>> children;

  /// Renders the span tree as an indented human-readable explain tree:
  ///   query                          9.12 ms
  ///   ├─ plan                        0.03 ms  [cost: NRA cheapest]
  ///   ...
  std::string Explain() const;

  /// Renders {"name": ..., "wall_ms": ..., "counters": {...},
  /// "children": [...]} recursively.
  std::string ToJson() const;
};

/// Null-safe child creation: returns the new child, or nullptr (for free)
/// when `parent` is null. This is the only way instrumented code should
/// grow a trace, so every call site stays correct with tracing off.
TraceSpan* AddSpan(TraceSpan* parent, std::string_view name);

/// Null-safe counter attach; no-op when `span` is null.
void AddCounter(TraceSpan* span, std::string_view name, double value);

/// Null-safe detail attach; no-op when `span` is null.
void SetDetail(TraceSpan* span, std::string_view detail);

/// Scoped wall-clock for one span: starts on construction, writes
/// span->wall_ms on Stop() or destruction. Null span: fully inert (the
/// StopWatch still constructs, which is one clock read; callers on paths
/// hotter than a mine should branch on the span themselves).
class SpanTimer {
 public:
  explicit SpanTimer(TraceSpan* span) : span_(span) {}
  ~SpanTimer() { Stop(); }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void Stop() {
    if (span_ != nullptr) span_->wall_ms = watch_.ElapsedMillis();
    span_ = nullptr;
  }

 private:
  TraceSpan* span_;
  StopWatch watch_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_OBS_TRACE_H_
