#ifndef PHRASEMINE_OBS_METRICS_H_
#define PHRASEMINE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace phrasemine {

/// Number of independent update stripes per counter. Hot-path increments
/// land on a per-thread stripe so concurrent writers on different cores do
/// not bounce one cache line; reads sum all stripes. 8 is enough to spread
/// a service pool's workers without bloating every counter.
inline constexpr std::size_t kMetricStripes = 8;

namespace obs_internal {
/// Stable per-thread stripe index (thread-id hash, computed once).
std::size_t ThisThreadStripe();
}  // namespace obs_internal

/// Monotonic named counter. Incrementing is a single relaxed atomic add on
/// this thread's stripe -- no locks, no ordering, safe from any thread.
class Counter {
 public:
  void Add(uint64_t n) {
    stripes_[obs_internal::ThisThreadStripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Point-in-time sum over stripes. Monotone across calls, but a racing
  /// Add may or may not be included -- exact only when writers are quiet.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Named gauge: a signed level that moves both ways (queue depths, cache
/// bytes). Add/Set are single relaxed atomics; Max() additionally tracks
/// the high-water mark the gauge ever reached (peak queue depth).
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  /// `n` may be negative; returns the post-add level (so one atomic op
  /// both moves the gauge and feeds the peak tracking).
  int64_t Add(int64_t n) {
    const int64_t now = value_.fetch_add(n, std::memory_order_relaxed) + n;
    UpdateMax(now);
    return now;
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Highest level ever Set/Add-ed (0 if the gauge never went positive).
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket log-scale histogram: 4 sub-buckets per octave (value
/// resolution ~19%), covering [1, 2^40) in the caller's unit (the service
/// records latency in microseconds: ~13 days of range). Recording is two
/// relaxed adds (bucket + sum) on this thread's stripe.
class Histogram {
 public:
  /// 40 octaves x 4 sub-buckets.
  static constexpr std::size_t kBuckets = 160;

  void Record(uint64_t value) {
    Stripe& s = stripes_[obs_internal::ThisThreadStripe()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Log-scale bucket of `value`: octave from the leading bit, sub-bucket
  /// from the next two bits. Values clamp into the first/last bucket.
  static std::size_t BucketIndex(uint64_t value) {
    if (value < 4) return value == 0 ? 0 : (value - 1);  // 1,2,3 exact
    const auto lg = static_cast<std::size_t>(63 - std::countl_zero(value));
    const std::size_t sub = static_cast<std::size_t>(value >> (lg - 2)) & 3;
    return std::min(lg * 4 + sub - 5, kBuckets - 1);
  }

  /// Inclusive upper bound of bucket `i` (the Prometheus `le` value).
  static uint64_t BucketUpperBound(std::size_t i);

 private:
  friend class MetricsRegistry;
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Point-in-time copy of one histogram (summed over stripes).
struct HistogramSnapshot {
  std::string name;
  std::array<uint64_t, Histogram::kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// q-quantile as the geometric midpoint of the covering bucket, in the
  /// recorded unit; 0 when empty.
  double Quantile(double q) const;
};

/// Point-in-time view of a whole registry, ordered by metric name so the
/// text and JSON expositions are deterministic (golden-testable).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter/gauge value by exact name; 0 when absent.
  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  /// Histogram by exact name; nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;

  /// Prometheus-style text exposition: one `# TYPE` line per metric, then
  /// `name value` samples; histograms expand into cumulative `_bucket`
  /// samples with `le` labels plus `_sum`/`_count`. Empty histogram
  /// buckets are elided (the final `le="+Inf"` sample always renders).
  std::string ToPrometheusText() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {"count": n, "sum": n, "buckets": [[le, cumulative], ...]}}}.
  /// The same elision as the text exposition, so both exporters
  /// round-trip the same data.
  std::string ToJson() const;
};

/// Process-wide (or per-service) named metric registry. Lookup by name
/// creates on first use and returns a stable pointer the caller should
/// cache -- the hot path then never touches the registry's mutex, only
/// the handle's relaxed atomics. Metric names are free-form but the
/// convention is Prometheus-flavored: `snake_case` with a `_total` suffix
/// for counters; a `{label="value"}` suffix is treated as part of the
/// name (the registry does not interpret labels, the exposition carries
/// them through).
///
/// Instances are independent: PhraseService owns one per service so tests
/// and co-hosted services never share counters; Default() is the shared
/// process-wide instance for code without a natural owner.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  /// Find-or-create; pointers stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_OBS_METRICS_H_
