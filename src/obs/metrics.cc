#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

namespace phrasemine {

namespace obs_internal {

std::size_t ThisThreadStripe() {
  thread_local const std::size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricStripes;
  return stripe;
}

}  // namespace obs_internal

namespace {

/// Lower bound (inclusive) of bucket `i`; 0 for the first bucket.
uint64_t BucketLowerBound(std::size_t i) {
  return i == 0 ? 0 : Histogram::BucketUpperBound(i - 1) + 1;
}

}  // namespace

uint64_t Histogram::BucketUpperBound(std::size_t i) {
  if (i >= kBuckets - 1) return UINT64_MAX;  // clamp bucket: +Inf
  if (i < 3) return i + 1;  // 1, 2, 3 exact
  const std::size_t lg = (i + 5) / 4;
  const std::size_t sub = (i + 5) % 4;
  const uint64_t width = uint64_t{1} << (lg - 2);
  return (uint64_t{4} + sub) * width + width - 1;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  const auto target = static_cast<uint64_t>(
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(count)));
  uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= std::max<uint64_t>(target, 1)) {
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi = Histogram::BucketUpperBound(i);
      // The clamp bucket has no finite upper bound; report its floor.
      if (hi == UINT64_MAX) return static_cast<double>(lo);
      return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
    }
  }
  return 0.0;  // unreachable: seen reaches count
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// Splits "name{label=...}" so a histogram's _bucket/_sum/_count suffixes
/// land before the label block, as the Prometheus format requires.
namespace {
std::pair<std::string_view, std::string_view> SplitLabels(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

/// `# TYPE` lines carry the bare metric name (labels are per-sample).
std::string_view BareName(std::string_view name) {
  return SplitLabels(name).first;
}
}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char buf[192];
  // One `# TYPE` line per metric family: labeled samples of one family
  // sort adjacently (the name is sorted with its label block), so a
  // family's TYPE line is emitted only when the bare name changes.
  std::string_view last_family;
  for (const auto& [name, value] : counters) {
    if (BareName(name) != last_family) {
      last_family = BareName(name);
      std::snprintf(buf, sizeof(buf), "# TYPE %.*s counter\n",
                    static_cast<int>(last_family.size()),
                    last_family.data());
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  last_family = {};
  for (const auto& [name, value] : gauges) {
    if (BareName(name) != last_family) {
      last_family = BareName(name);
      std::snprintf(buf, sizeof(buf), "# TYPE %.*s gauge\n",
                    static_cast<int>(last_family.size()),
                    last_family.data());
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += buf;
  }
  last_family = {};
  for (const HistogramSnapshot& h : histograms) {
    const auto [base, labels] = SplitLabels(h.name);
    if (base != last_family) {
      last_family = base;
      std::snprintf(buf, sizeof(buf), "# TYPE %.*s histogram\n",
                    static_cast<int>(base.size()), base.data());
      out += buf;
    }
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // elide empty buckets
      cumulative += h.buckets[i];
      const uint64_t le = Histogram::BucketUpperBound(i);
      if (le == UINT64_MAX) continue;  // folded into +Inf below
      std::snprintf(buf, sizeof(buf), "%.*s_bucket{le=\"%llu\"%s%.*s %llu\n",
                    static_cast<int>(base.size()), base.data(),
                    static_cast<unsigned long long>(le),
                    labels.empty() ? "}" : ",",
                    static_cast<int>(labels.empty() ? 0 : labels.size() - 1),
                    labels.empty() ? "" : labels.data() + 1,
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%.*s_bucket{le=\"+Inf\"%s%.*s %llu\n",
                  static_cast<int>(base.size()), base.data(),
                  labels.empty() ? "}" : ",",
                  static_cast<int>(labels.empty() ? 0 : labels.size() - 1),
                  labels.empty() ? "" : labels.data() + 1,
                  static_cast<unsigned long long>(h.count));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.*s_sum%.*s %llu\n",
                  static_cast<int>(base.size()), base.data(),
                  static_cast<int>(labels.size()), labels.data(),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.*s_count%.*s %llu\n",
                  static_cast<int>(base.size()), base.data(),
                  static_cast<int>(labels.size()), labels.data(),
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

namespace {
/// JSON string escaping for metric names (quotes and backslashes only:
/// names are ASCII identifiers plus label syntax by convention).
std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  char buf[96];
  for (std::size_t i = 0; i < counters.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\n    ", i == 0 ? "" : ",");
    out += buf;
    out += JsonQuote(counters[i].first);
    std::snprintf(buf, sizeof(buf), ": %llu",
                  static_cast<unsigned long long>(counters[i].second));
    out += buf;
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\n    ", i == 0 ? "" : ",");
    out += buf;
    out += JsonQuote(gauges[i].first);
    std::snprintf(buf, sizeof(buf), ": %lld",
                  static_cast<long long>(gauges[i].second));
    out += buf;
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    out += JsonQuote(h.name);
    std::snprintf(buf, sizeof(buf), ": {\"count\": %llu, \"sum\": %llu, ",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    out += "\"buckets\": [";
    uint64_t cumulative = 0;
    bool first = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      const uint64_t le = Histogram::BucketUpperBound(b);
      if (le == UINT64_MAX) continue;
      std::snprintf(buf, sizeof(buf), "%s[%llu, %llu]", first ? "" : ", ",
                    static_cast<unsigned long long>(le),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
      first = false;
    }
    out += "]}";
  }
  out += histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::scoped_lock lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, counter] : counters_) {
      snap.counters.emplace_back(name, counter->Value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges.emplace_back(name, gauge->Value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
      HistogramSnapshot h;
      h.name = name;
      for (const Histogram::Stripe& stripe : histogram->stripes_) {
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          h.buckets[b] += stripe.buckets[b].load(std::memory_order_relaxed);
        }
        h.sum += stripe.sum.load(std::memory_order_relaxed);
      }
      for (uint64_t b : h.buckets) h.count += b;
      snap.histograms.push_back(std::move(h));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace phrasemine
