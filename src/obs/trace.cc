#include "obs/trace.h"

#include <cmath>
#include <cstdio>

namespace phrasemine {

TraceSpan* AddSpan(TraceSpan* parent, std::string_view name) {
  if (parent == nullptr) return nullptr;
  parent->children.push_back(std::make_shared<TraceSpan>());
  TraceSpan* child = parent->children.back().get();
  child->name = name;
  return child;
}

void AddCounter(TraceSpan* span, std::string_view name, double value) {
  if (span == nullptr) return;
  span->counters.emplace_back(std::string(name), value);
}

void SetDetail(TraceSpan* span, std::string_view detail) {
  if (span == nullptr) return;
  span->detail = detail;
}

namespace {

/// Counter values render as integers when whole (they usually are) and
/// with three decimals otherwise.
void AppendValue(std::string* out, double v) {
  char buf[48];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  *out += buf;
}

void ExplainNode(const TraceSpan& span, const std::string& prefix,
                 bool is_last, bool is_root, std::string* out) {
  char buf[64];
  if (!is_root) {
    *out += prefix;
    *out += is_last ? "`- " : "|- ";
  }
  *out += span.name;
  std::snprintf(buf, sizeof(buf), "  %.3f ms", span.wall_ms);
  *out += buf;
  if (!span.counters.empty()) {
    *out += "  [";
    for (std::size_t i = 0; i < span.counters.size(); ++i) {
      if (i > 0) *out += ' ';
      *out += span.counters[i].first;
      *out += '=';
      AppendValue(out, span.counters[i].second);
    }
    *out += ']';
  }
  if (!span.detail.empty()) {
    *out += "  ";
    *out += span.detail;
  }
  *out += '\n';
  const std::string child_prefix =
      is_root ? "" : prefix + (is_last ? "   " : "|  ");
  for (std::size_t i = 0; i < span.children.size(); ++i) {
    ExplainNode(*span.children[i], child_prefix,
                i + 1 == span.children.size(), /*is_root=*/false, out);
  }
}

void JsonQuote(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void JsonNode(const TraceSpan& span, std::string* out) {
  char buf[48];
  *out += "{\"name\": ";
  JsonQuote(out, span.name);
  std::snprintf(buf, sizeof(buf), ", \"wall_ms\": %.4f", span.wall_ms);
  *out += buf;
  if (!span.detail.empty()) {
    *out += ", \"detail\": ";
    JsonQuote(out, span.detail);
  }
  if (!span.counters.empty()) {
    *out += ", \"counters\": {";
    for (std::size_t i = 0; i < span.counters.size(); ++i) {
      if (i > 0) *out += ", ";
      JsonQuote(out, span.counters[i].first);
      *out += ": ";
      AppendValue(out, span.counters[i].second);
    }
    *out += '}';
  }
  if (!span.children.empty()) {
    *out += ", \"children\": [";
    for (std::size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) *out += ", ";
      JsonNode(*span.children[i], out);
    }
    *out += ']';
  }
  *out += '}';
}

}  // namespace

std::string TraceSpan::Explain() const {
  std::string out;
  ExplainNode(*this, "", /*is_last=*/true, /*is_root=*/true, &out);
  return out;
}

std::string TraceSpan::ToJson() const {
  std::string out;
  JsonNode(*this, &out);
  out += '\n';
  return out;
}

}  // namespace phrasemine
