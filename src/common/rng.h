#ifndef PHRASEMINE_COMMON_RNG_H_
#define PHRASEMINE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace phrasemine {

/// Deterministic 64-bit PRNG (SplitMix64). Used by the synthetic corpus
/// generators so that every experiment is exactly reproducible from a seed;
/// we deliberately avoid std::mt19937 whose stream differs across standard
/// library implementations.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// Samples from a Zipf distribution over {0, 1, ..., n-1} with exponent s,
/// using an inverse-CDF table. Word frequencies in natural language corpora
/// are Zipfian, so the synthetic generator draws vocabulary terms from this.
class ZipfSampler {
 public:
  /// Builds the cumulative table. n must be >= 1; s is typically ~1.0.
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank; rank 0 is the most probable outcome.
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double Probability(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_COMMON_RNG_H_
