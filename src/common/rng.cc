#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace phrasemine {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  PM_CHECK(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (std::size_t i = 0; i < n; ++i) {
    cdf_[i] /= total;
  }
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::size_t rank) const {
  PM_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace phrasemine
