#ifndef PHRASEMINE_COMMON_STOPWATCH_H_
#define PHRASEMINE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace phrasemine {

/// Monotonic wall-clock stopwatch used to time query execution. All mining
/// algorithms report elapsed microseconds through this type so benchmark
/// harnesses have a single clock source.
class StopWatch {
 public:
  StopWatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch at the current instant.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds as a double (fractional part preserved).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_COMMON_STOPWATCH_H_
