#ifndef PHRASEMINE_COMMON_IO_UTIL_H_
#define PHRASEMINE_COMMON_IO_UTIL_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace phrasemine {

// The on-disk format is little-endian by declaration, but PutRaw/GetRaw
// move host-order bytes: the contract only holds on little-endian hosts,
// so it is enforced at compile time instead of being silently violated on
// a big-endian build. The index-file superblock additionally stamps the
// writer's endianness so a foreign file fails with a clean Corruption
// error rather than deserializing garbage (see storage/index_file.h).
static_assert(std::endian::native == std::endian::little,
              "phrasemine's serialization writes host byte order and its "
              "on-disk formats are defined little-endian; big-endian hosts "
              "need byte-swapping Put*/Get* before this can build");

/// Append-only little-endian binary encoder used by all index serializers.
/// The encoding is fixed-width (no varints) for simplicity and O(1) seeks.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Writes a length-prefixed string (u32 length + bytes).
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Writes a length-prefixed vector of u32.
  void PutU32Vector(const std::vector<uint32_t>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    PutRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  /// Writes raw bytes without a length prefix.
  void PutRaw(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + n);
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  /// Flushes the accumulated bytes to a file.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
};

/// Sequential little-endian decoder over an in-memory byte buffer. All Get*
/// methods return Status so truncated or corrupt files surface as errors
/// rather than undefined behaviour. A reader either owns its bytes (the
/// FromFile / vector constructors) or borrows them (the span constructor,
/// used to decode sections of an mmapped index file without copying); a
/// borrowing reader must not outlive the mapping it reads.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> data)
      : owned_(std::move(data)), data_(owned_.data()), size_(owned_.size()) {}

  /// Borrowed view: decodes in place, no copy. The underlying bytes (an
  /// mmapped section, another buffer) must stay alive and unchanged for
  /// the reader's lifetime.
  explicit BinaryReader(std::span<const uint8_t> view)
      : data_(view.data()), size_(view.size()) {}

  // Move-only: a copy of an owning reader would alias the source's buffer
  // through the raw cursor pointer.
  BinaryReader(BinaryReader&& other) noexcept { *this = std::move(other); }
  BinaryReader& operator=(BinaryReader&& other) noexcept {
    const bool owning = other.data_ == other.owned_.data();
    owned_ = std::move(other.owned_);
    data_ = owning ? owned_.data() : other.data_;
    size_ = other.size_;
    pos_ = other.pos_;
    return *this;
  }
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  /// Loads the whole file into memory and wraps it in a reader. Uses a
  /// 64-bit size query, so files >= 2 GiB load correctly on platforms
  /// where long is 32 bits; files larger than the address space fail with
  /// IOError instead of a silent truncation.
  static Result<BinaryReader> FromFile(const std::string& path);

  Status GetU8(uint8_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }

  /// Reads a length-prefixed string.
  Status GetString(std::string* out);

  /// Reads a length-prefixed vector of u32.
  Status GetU32Vector(std::vector<uint32_t>* out);

  /// Reads n raw bytes into out.
  Status GetRaw(void* out, std::size_t n);

  /// Byte offset of the read cursor from the start of the buffer. For a
  /// borrowed section reader this is the local offset within the section
  /// -- what the index-file loader records as each structure's layout.
  std::size_t position() const { return pos_; }

  /// Bytes remaining after the read cursor.
  std::size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  std::vector<uint8_t> owned_;  // empty for borrowing readers
  const uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_COMMON_IO_UTIL_H_
