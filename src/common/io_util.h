#ifndef PHRASEMINE_COMMON_IO_UTIL_H_
#define PHRASEMINE_COMMON_IO_UTIL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace phrasemine {

/// Append-only little-endian binary encoder used by all index serializers.
/// The encoding is fixed-width (no varints) for simplicity and O(1) seeks.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// Writes a length-prefixed string (u32 length + bytes).
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  /// Writes a length-prefixed vector of u32.
  void PutU32Vector(const std::vector<uint32_t>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    PutRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  /// Writes raw bytes without a length prefix.
  void PutRaw(const void* data, std::size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + n);
  }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  /// Flushes the accumulated bytes to a file.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
};

/// Sequential little-endian decoder over an in-memory byte buffer. All Get*
/// methods return Status so truncated or corrupt files surface as errors
/// rather than undefined behaviour.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> data) : data_(std::move(data)) {}

  /// Loads the whole file into memory and wraps it in a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

  Status GetU8(uint8_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }
  Status GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }

  /// Reads a length-prefixed string.
  Status GetString(std::string* out);

  /// Reads a length-prefixed vector of u32.
  Status GetU32Vector(std::vector<uint32_t>* out);

  /// Reads n raw bytes into out.
  Status GetRaw(void* out, std::size_t n);

  /// Bytes remaining after the read cursor.
  std::size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::vector<uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_COMMON_IO_UTIL_H_
