#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace phrasemine {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void ResultValueOnErrorAbort(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace phrasemine
