#ifndef PHRASEMINE_COMMON_CHECK_H_
#define PHRASEMINE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// PM_CHECK(cond): aborts with a diagnostic when an internal invariant is
/// violated. Active in all build types -- invariant violations in an index
/// structure are never recoverable, so we prefer a loud crash over silently
/// corrupt query results.
#define PM_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PM_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// PM_CHECK_MSG(cond, msg): like PM_CHECK with an extra explanatory string.
#define PM_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PM_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // PHRASEMINE_COMMON_CHECK_H_
