#ifndef PHRASEMINE_COMMON_CANCEL_H_
#define PHRASEMINE_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

namespace phrasemine {

/// Cooperative cancellation handle for one query. The service materializes
/// one per deadline-carrying request and threads a pointer through
/// MineOptions::cancel; every execution leg (NRA traversal, SMJ merges, SoA
/// kernels, sharded scatter/fill, disk-tier charge points) polls it at block
/// granularity and unwinds with Status::DeadlineExceeded when it fires.
///
/// Two trigger paths share one latch:
///  - an absolute deadline (AfterMillis) -- Expired() compares the steady
///    clock and latches on the first observation past the deadline;
///  - an explicit Cancel() from any thread.
///
/// The latch makes cancellation cheap to fan out: one leg paying the clock
/// read in Expired() publishes the verdict, and sibling shard legs see it
/// through the relaxed-atomic cancelled() flag without touching the clock.
/// Checks are cooperative -- nothing is preempted, so cancellation latency
/// is bounded by the checking cadence (one block / batch / merge round),
/// not by the token.
class CancelToken {
 public:
  /// A token that never expires on its own (Cancel() still works).
  CancelToken() = default;

  /// A token whose deadline is `ms` milliseconds from now.
  static CancelToken AfterMillis(double ms) {
    CancelToken token;
    token.has_deadline_ = true;
    token.deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(ms));
    return token;
  }

  CancelToken(CancelToken&& other) noexcept
      : deadline_(other.deadline_),
        has_deadline_(other.has_deadline_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; every subsequent cancelled()/Expired() is true.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Flag-only check: true once Cancel() was called or a prior Expired()
  /// observed the deadline. Never reads the clock -- this is the check for
  /// per-entry hot paths (disk charge points, sibling shard legs).
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Full check: cancelled(), else compares the deadline against the steady
  /// clock and latches the verdict so siblings see it via cancelled().
  bool Expired() const {
    if (cancelled()) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }

  /// Milliseconds until the deadline (negative once past); a very large
  /// value when the token has no deadline.
  double remaining_ms() const {
    if (cancelled()) return 0.0;
    if (!has_deadline_) return 1e18;
    return std::chrono::duration<double, std::milli>(
               deadline_ - std::chrono::steady_clock::now())
        .count();
  }

 private:
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  mutable std::atomic<bool> cancelled_{false};
};

/// Null-safe helpers for the common "token is optional" call sites.
inline bool CancelRequested(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}
inline bool CancelExpired(const CancelToken* token) {
  return token != nullptr && token->Expired();
}

}  // namespace phrasemine

#endif  // PHRASEMINE_COMMON_CANCEL_H_
