#ifndef PHRASEMINE_COMMON_STATUS_H_
#define PHRASEMINE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace phrasemine {

/// Error codes used across the library. Modeled on the RocksDB Status idiom:
/// fallible operations return a Status (or a Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kResourceExhausted,
  kUnavailable,
};

/// A lightweight success/error carrier. The OK status carries no message and
/// is cheap to copy; error statuses carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory functions, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error result aborts, so callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Precondition: ok().
  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

// Implementation details only below here.

template <typename T>
void Result<T>::AbortIfError() const {
  if (!status_.ok()) {
    // Defined out of line in status.cc via helper to keep the template thin.
    extern void ResultValueOnErrorAbort(const Status& status);
    ResultValueOnErrorAbort(status_);
  }
}

}  // namespace phrasemine

#endif  // PHRASEMINE_COMMON_STATUS_H_
