#include "common/io_util.h"

#include <cstdio>
#include <filesystem>
#include <limits>
#include <system_error>

namespace phrasemine {

Status BinaryWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  std::size_t written = 0;
  if (!buffer_.empty()) {
    written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  }
  std::fclose(f);
  if (written != buffer_.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  // std::ftell returns long, which truncates sizes >= 2 GiB where long is
  // 32 bits (LP32, Windows); filesystem::file_size is 64-bit everywhere.
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat: " + path + ": " + ec.message());
  }
  if (size > std::numeric_limits<std::size_t>::max()) {
    return Status::IOError("file too large to load into memory: " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::vector<uint8_t> data(static_cast<std::size_t>(size));
  std::size_t got = 0;
  if (size > 0) {
    got = std::fread(data.data(), 1, data.size(), f);
  }
  std::fclose(f);
  if (got != data.size()) {
    return Status::IOError("short read from " + path);
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::GetString(std::string* out) {
  uint32_t len = 0;
  Status s = GetU32(&len);
  if (!s.ok()) return s;
  if (len > Remaining()) {
    return Status::Corruption("string length exceeds remaining bytes");
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::GetU32Vector(std::vector<uint32_t>* out) {
  uint32_t len = 0;
  Status s = GetU32(&len);
  if (!s.ok()) return s;
  const std::size_t bytes = static_cast<std::size_t>(len) * sizeof(uint32_t);
  if (bytes > Remaining()) {
    return Status::Corruption("vector length exceeds remaining bytes");
  }
  out->resize(len);
  if (len > 0) {
    std::memcpy(out->data(), data_ + pos_, bytes);
  }
  pos_ += bytes;
  return Status::OK();
}

Status BinaryReader::GetRaw(void* out, std::size_t n) {
  if (n > Remaining()) {
    return Status::Corruption("read past end of buffer");
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace phrasemine
