#include "testing/failpoint.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

namespace phrasemine::failpoint {

namespace {

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Action> armed;
  std::unordered_map<std::string, uint64_t> hits;
};

/// Leaked singleton: failpoints may be evaluated from detached pool workers
/// during process teardown, so the registry must outlive static destructors.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

Status MakeStatus(StatusCode code, const std::string& message) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kOk:
      break;
  }
  return Status::OK();
}

}  // namespace

namespace internal {

std::atomic<int> armed_count{0};

Status Hit(const char* name) {
  Registry& r = registry();
  double delay_ms = 0.0;
  Status injected = Status::OK();
  {
    std::scoped_lock lock(r.mu);
    auto it = r.armed.find(name);
    if (it == r.armed.end()) return Status::OK();
    Action& action = it->second;
    if (action.skip_first > 0) {
      --action.skip_first;
      return Status::OK();
    }
    ++r.hits[it->first];
    delay_ms = action.delay_ms;
    injected = MakeStatus(action.error_code, action.error_message);
    if (action.max_hits > 0 && --action.max_hits == 0) {
      r.armed.erase(it);
      armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Sleep outside the lock so a latency site can't serialize unrelated sites.
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
  }
  return injected;
}

}  // namespace internal

void Arm(const std::string& name, Action action) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  if (action.max_hits == 0) return;  // an action that can never fire
  const bool existed = r.armed.contains(name);
  r.armed.insert_or_assign(name, std::move(action));
  if (!existed) internal::armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  if (r.armed.erase(name) > 0) {
    internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  internal::armed_count.fetch_sub(static_cast<int>(r.armed.size()),
                                  std::memory_order_relaxed);
  r.armed.clear();
}

uint64_t HitCount(const std::string& name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  auto it = r.hits.find(name);
  return it == r.hits.end() ? 0 : it->second;
}

void ResetHitCounts() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  r.hits.clear();
}

}  // namespace phrasemine::failpoint
