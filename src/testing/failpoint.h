#ifndef PHRASEMINE_TESTING_FAILPOINT_H_
#define PHRASEMINE_TESTING_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace phrasemine::failpoint {

/// What an armed failpoint does when its site is evaluated. Errors and
/// latency compose: a hit first sleeps `delay_ms`, then returns the error
/// (if any). Hit budgeting makes storms finite: `skip_first` passes through
/// that many evaluations untouched, then the action fires on up to
/// `max_hits` evaluations before the site auto-disarms.
struct Action {
  /// kOk injects no error (latency-only site).
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;
  /// Added latency per fired hit, applied before the error.
  double delay_ms = 0.0;
  /// Fired hits before auto-disarm; -1 = until Disarm().
  int64_t max_hits = -1;
  /// Evaluations passed through unharmed before the first fired hit.
  uint64_t skip_first = 0;
};

/// Arms (or re-arms) the named site. Sites are plain strings; arming a name
/// with no matching PM_FAILPOINT site is allowed and simply never fires.
void Arm(const std::string& name, Action action);

/// Disarms one site (no-op when not armed).
void Disarm(const std::string& name);

/// Disarms every site. Counters survive; see ResetHitCounts().
void DisarmAll();

/// Fired hits of the named site since the last ResetHitCounts() (evaluations
/// that slept and/or returned the injected error; skipped ones don't count).
uint64_t HitCount(const std::string& name);

/// Zeroes every hit counter (for per-phase assertions within one process).
void ResetHitCounts();

namespace internal {
/// Number of currently armed sites; the fast path reads only this.
extern std::atomic<int> armed_count;
Status Hit(const char* name);
}  // namespace internal

/// True when any failpoint is armed anywhere in the process. One relaxed
/// atomic load -- this is the only cost production code pays when the
/// harness is idle, and sites that must build dynamic names (e.g. per-shard)
/// gate the string construction on it.
inline bool Enabled() {
  return internal::armed_count.load(std::memory_order_relaxed) > 0;
}

/// Evaluates the named site: returns OK() without taking any lock when
/// nothing is armed; otherwise consults the registry, sleeps/errors per the
/// armed Action, and returns the injected Status.
inline Status Evaluate(const char* name) {
  if (!Enabled()) return Status::OK();
  return internal::Hit(name);
}

}  // namespace phrasemine::failpoint

/// Site macro: drop `if (Status s = PM_FAILPOINT("my.site"); !s.ok()) ...`
/// at any point that should be fault-injectable. Zero-cost when disarmed.
#define PM_FAILPOINT(name) ::phrasemine::failpoint::Evaluate(name)

#endif  // PHRASEMINE_TESTING_FAILPOINT_H_
