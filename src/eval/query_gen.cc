#include "eval/query_gen.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/rng.h"

namespace phrasemine {

QuerySetGenerator::QuerySetGenerator(QueryGenOptions options)
    : options_(options) {}

std::vector<Query> QuerySetGenerator::Generate(
    const PhraseDictionary& dict, const InvertedIndex& inverted,
    std::size_t num_docs) const {
  const uint32_t max_term_df =
      num_docs == 0 ? UINT32_MAX
                    : static_cast<uint32_t>(options_.max_term_df_fraction *
                                            static_cast<double>(num_docs));
  // Candidate phrases: multi-word, sorted by df desc so we harvest from the
  // most frequent ones first (the paper picks frequent phrases).
  std::vector<PhraseId> candidates;
  for (PhraseId p = 0; p < dict.size(); ++p) {
    if (dict.info(p).tokens.size() >= 2) candidates.push_back(p);
  }
  std::sort(candidates.begin(), candidates.end(), [&](PhraseId a, PhraseId b) {
    if (dict.df(a) != dict.df(b)) return dict.df(a) > dict.df(b);
    return a < b;
  });

  Rng rng(options_.seed);
  std::vector<Query> queries;
  std::set<std::vector<TermId>> seen;

  // Desired word-count per query, in production order: the long queries
  // first, then 2-4 word queries.
  std::vector<std::size_t> wanted_lengths;
  for (std::size_t i = 0; i < options_.num_six_word; ++i)
    wanted_lengths.push_back(6);
  for (std::size_t i = 0; i < options_.num_five_word; ++i)
    wanted_lengths.push_back(5);
  while (wanted_lengths.size() < options_.num_queries) {
    wanted_lengths.push_back(2 + rng.NextBelow(3));  // 2..4 words
  }

  // A term set of size L is assembled from one or two frequent phrases'
  // words. Skim candidates in frequency order with a random stride so the
  // workload is not just the top-|Q| phrases.
  std::size_t cursor = 0;
  auto next_candidate = [&]() -> PhraseId {
    if (candidates.empty()) return kInvalidPhraseId;
    const PhraseId p = candidates[cursor % candidates.size()];
    cursor += 1 + rng.NextBelow(3);
    return p;
  };

  std::size_t attempts = 0;
  const std::size_t max_attempts = options_.num_queries * 200 + 1000;
  for (std::size_t qi = 0;
       qi < wanted_lengths.size() && attempts < max_attempts;) {
    ++attempts;
    const std::size_t want = wanted_lengths[qi];
    const PhraseId seed_phrase = next_candidate();
    if (seed_phrase == kInvalidPhraseId) break;

    // Harvest mid-frequency words from the seed phrase (and further
    // phrases when it is too short), requiring pairwise document
    // co-occurrence with the words picked so far. This mirrors the paper's
    // harvesting: query words come from frequent corpus phrases -- and are
    // therefore strongly mutually correlated, the regime the independence
    // assumption of Section 4.1.1 is designed for -- while the frequency
    // cap keeps ubiquitous near-stopwords out (nobody queries for those).
    std::vector<TermId> terms;
    std::unordered_set<TermId> used;
    auto absorb = [&](PhraseId p) {
      for (TermId t : dict.info(p).tokens) {
        if (terms.size() >= want) return;
        if (inverted.df(t) < options_.min_term_df) continue;
        if (inverted.df(t) > max_term_df) continue;
        if (used.contains(t)) continue;
        bool coherent = true;
        for (TermId prev : terms) {
          if (InvertedIndex::IntersectSize(inverted.docs(prev),
                                           inverted.docs(t)) <
              options_.min_pairwise_codf) {
            coherent = false;
            break;
          }
        }
        if (!coherent) continue;
        used.insert(t);
        terms.push_back(t);
      }
    };
    absorb(seed_phrase);
    for (int extra = 0; terms.size() < want && extra < 24; ++extra) {
      absorb(next_candidate());
    }
    if (terms.size() < want) continue;

    // The same query set serves AND and OR experiments, so the conjunction
    // must select a workable sub-collection (the paper required "at least a
    // dozen matches" when curating its Pubmed workload).
    {
      std::vector<const std::vector<DocId>*> lists;
      for (TermId t : terms) lists.push_back(&inverted.docs(t));
      if (InvertedIndex::Intersect(lists).size() <
          options_.min_and_matches) {
        continue;
      }
    }

    std::vector<TermId> key = terms;
    std::sort(key.begin(), key.end());
    if (!seen.insert(key).second) continue;

    Query q;
    q.terms = std::move(terms);
    q.op = QueryOperator::kAnd;
    queries.push_back(std::move(q));
    ++qi;
  }
  return queries;
}

std::vector<Query> WithOperator(std::vector<Query> queries,
                                QueryOperator op) {
  for (Query& q : queries) q.op = op;
  return queries;
}

}  // namespace phrasemine
