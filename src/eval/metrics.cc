#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace phrasemine {

QualityMetrics& QualityMetrics::operator+=(const QualityMetrics& other) {
  precision += other.precision;
  mrr += other.mrr;
  map += other.map;
  ndcg += other.ndcg;
  return *this;
}

QualityMetrics QualityMetrics::operator/(double divisor) const {
  return QualityMetrics{precision / divisor, mrr / divisor, map / divisor,
                        ndcg / divisor};
}

QualityMetrics ComputeQuality(const std::vector<PhraseId>& retrieved,
                              const std::unordered_set<PhraseId>& relevant,
                              std::size_t k) {
  QualityMetrics m;
  if (k == 0 || relevant.empty()) return m;

  const std::size_t depth = std::min(retrieved.size(), k);
  std::size_t hits = 0;
  double ap_sum = 0.0;
  double dcg = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    if (!relevant.contains(retrieved[i])) continue;
    ++hits;
    if (m.mrr == 0.0) {
      m.mrr = 1.0 / static_cast<double>(i + 1);
    }
    ap_sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    dcg += 1.0 / std::log2(static_cast<double>(i + 2));
  }

  m.precision = static_cast<double>(hits) / static_cast<double>(k);

  const std::size_t ideal_hits = std::min(k, relevant.size());
  if (hits > 0) {
    m.map = ap_sum / static_cast<double>(std::min(ideal_hits, depth));
  }
  double ideal_dcg = 0.0;
  for (std::size_t i = 0; i < ideal_hits; ++i) {
    ideal_dcg += 1.0 / std::log2(static_cast<double>(i + 2));
  }
  if (ideal_dcg > 0.0) m.ndcg = dcg / ideal_dcg;
  return m;
}

}  // namespace phrasemine
