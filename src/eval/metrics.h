#ifndef PHRASEMINE_EVAL_METRICS_H_
#define PHRASEMINE_EVAL_METRICS_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "text/types.h"

namespace phrasemine {

/// The four rank-quality measures of Section 5.2, computed over binary
/// relevance. All lie in [0, 1]; 1.0 is perfect agreement with the
/// reference results.
struct QualityMetrics {
  double precision = 0.0;  ///< Fraction of retrieved results that are correct.
  double mrr = 0.0;        ///< Reciprocal rank of the first correct result.
  double map = 0.0;        ///< Average precision over correct positions.
  double ndcg = 0.0;       ///< Normalized discounted cumulative gain.

  /// Element-wise accumulation helpers for averaging across queries.
  QualityMetrics& operator+=(const QualityMetrics& other);
  QualityMetrics operator/(double divisor) const;
};

/// Scores a retrieved ranking against a set of relevant ids. `k` is the
/// retrieval depth (top-k); rankings shorter than k are treated as-is.
/// The ideal DCG normalizer uses min(k, |relevant|) leading relevant slots.
QualityMetrics ComputeQuality(const std::vector<PhraseId>& retrieved,
                              const std::unordered_set<PhraseId>& relevant,
                              std::size_t k);

}  // namespace phrasemine

#endif  // PHRASEMINE_EVAL_METRICS_H_
