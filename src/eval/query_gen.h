#ifndef PHRASEMINE_EVAL_QUERY_GEN_H_
#define PHRASEMINE_EVAL_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "index/inverted_index.h"
#include "phrase/phrase_dictionary.h"

namespace phrasemine {

/// Workload-generation knobs. The defaults reproduce the paper's Reuters
/// query set shape (Section 5.1): 100 queries harvested from frequent
/// phrases, two 6-word and two 5-word queries, the rest 2-4 words.
struct QueryGenOptions {
  uint64_t seed = 7;
  std::size_t num_queries = 100;
  std::size_t num_six_word = 2;
  std::size_t num_five_word = 2;
  /// Minimum document frequency for a term to be usable in a query (avoids
  /// degenerate one-document features).
  uint32_t min_term_df = 12;
  /// Maximum document frequency for a query term, as a fraction of the
  /// corpus. Near-ubiquitous words make P(q|p) = 1 for every phrase --
  /// nobody queries for stopwords -- so the workload sticks to
  /// mid-frequency keywords like the paper's "trade" or "protein".
  double max_term_df_fraction = 0.10;
  /// Minimum pairwise document co-occurrence between any two query words:
  /// keeps the keyword set topically coherent without requiring the words
  /// to form a contiguous corpus phrase.
  uint32_t min_pairwise_codf = 6;
  /// Minimum size of the AND sub-collection for the query to be accepted
  /// (the paper curated its Pubmed workload to "at least a dozen matches").
  std::size_t min_and_matches = 6;
};

/// Harvests query term-sets from the corpus's frequent phrases, as the
/// paper does: the words of a frequent multi-word phrase become the query
/// terms, guaranteeing that AND sub-collections are non-empty and that
/// strong phrase-query correlations exist. The produced queries carry term
/// ids only; the caller picks the operator per experiment (the paper runs
/// the same set under both AND and OR).
class QuerySetGenerator {
 public:
  explicit QuerySetGenerator(QueryGenOptions options = {});

  /// Generates `options.num_queries` distinct term-sets. `num_docs` (the
  /// corpus size) anchors the max_term_df_fraction cutoff; passing 0
  /// disables the cap.
  std::vector<Query> Generate(const PhraseDictionary& dict,
                              const InvertedIndex& inverted,
                              std::size_t num_docs = 0) const;

 private:
  QueryGenOptions options_;
};

/// Copies a query set with the operator switched (harness convenience).
std::vector<Query> WithOperator(std::vector<Query> queries, QueryOperator op);

}  // namespace phrasemine

#endif  // PHRASEMINE_EVAL_QUERY_GEN_H_
