#include "eval/experiment.h"

#include <cmath>
#include <unordered_set>

namespace phrasemine {

double TrueInterestingness(MiningEngine& engine, PhraseId phrase,
                           const std::vector<DocId>& subset) {
  const std::span<const DocId> docs = engine.postings().docs(phrase);
  if (docs.empty()) return 0.0;
  const std::size_t inter = InvertedIndex::IntersectSize(docs, subset);
  return static_cast<double>(inter) / static_cast<double>(docs.size());
}

AggregateRun RunExperiment(MiningEngine& engine,
                           std::span<const Query> queries, QueryOperator op,
                           Algorithm algorithm, const MineOptions& options,
                           bool evaluate_quality) {
  AggregateRun agg;
  double diff_sum = 0.0;
  std::size_t diff_count = 0;

  for (const Query& base : queries) {
    Query query = base;
    query.op = op;

    MineResult run = engine.Mine(query, algorithm, options);
    agg.avg_compute_ms += run.compute_ms;
    agg.avg_disk_ms += run.disk_ms;
    agg.avg_total_ms += run.TotalMs();
    agg.avg_traversed_fraction += run.lists_traversed_fraction;
    agg.avg_entries_read += static_cast<double>(run.entries_read);
    ++agg.num_queries;

    if (!evaluate_quality) continue;

    MineResult truth = engine.Mine(query, Algorithm::kExact, options);
    std::unordered_set<PhraseId> relevant;
    for (const MinedPhrase& p : truth.phrases) relevant.insert(p.phrase);

    // Paper rule: a result with true interestingness 1.0 also counts as
    // correct even when outside the exact top-k (ties at the maximum).
    const std::vector<DocId> subset = EvalSubCollection(query, engine.inverted());
    std::vector<PhraseId> retrieved;
    for (const MinedPhrase& p : run.phrases) {
      retrieved.push_back(p.phrase);
      const double true_score = TrueInterestingness(engine, p.phrase, subset);
      if (true_score >= 1.0) relevant.insert(p.phrase);
      diff_sum += std::abs(p.interestingness - true_score);
      ++diff_count;
    }
    agg.quality += ComputeQuality(retrieved, relevant, options.k);
  }

  const double n = static_cast<double>(agg.num_queries == 0 ? 1 : agg.num_queries);
  agg.avg_compute_ms /= n;
  agg.avg_disk_ms /= n;
  agg.avg_total_ms /= n;
  agg.avg_traversed_fraction /= n;
  agg.avg_entries_read /= n;
  if (evaluate_quality) {
    agg.quality = agg.quality / n;
    agg.mean_interestingness_diff =
        diff_count == 0 ? 0.0 : diff_sum / static_cast<double>(diff_count);
  }
  return agg;
}

}  // namespace phrasemine
