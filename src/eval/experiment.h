#ifndef PHRASEMINE_EVAL_EXPERIMENT_H_
#define PHRASEMINE_EVAL_EXPERIMENT_H_

#include <span>
#include <vector>

#include "core/engine.h"
#include "eval/metrics.h"

namespace phrasemine {

/// Aggregated outcome of running one algorithm configuration over a query
/// workload; everything the Section 5 figures and tables report.
struct AggregateRun {
  /// Averaged rank-quality vs the exact results (Figures 5/6); only filled
  /// when quality evaluation was requested.
  QualityMetrics quality;
  /// Mean |estimated - true| interestingness over result phrases (Table 6).
  double mean_interestingness_diff = 0.0;

  double avg_compute_ms = 0.0;
  double avg_disk_ms = 0.0;
  double avg_total_ms = 0.0;  ///< compute + charged disk (Figures 7-10, 12, 13)

  /// Average fraction of lists traversed (Figure 11, NRA only).
  double avg_traversed_fraction = 0.0;
  double avg_entries_read = 0.0;

  std::size_t num_queries = 0;
};

/// True interestingness I_D(p, D') of Eq. 1, computed from the phrase
/// posting index: |docs(p) ∩ D'| / |docs(p)|. `subset` must be sorted.
double TrueInterestingness(MiningEngine& engine, PhraseId phrase,
                           const std::vector<DocId>& subset);

/// Runs `algorithm` over every query (with the given operator applied) and
/// aggregates timings; when `evaluate_quality` is set, also runs the exact
/// miner per query and scores the approximation against it using the
/// paper's correctness rule (Section 5.3): a retrieved phrase is correct if
/// it is in the exact top-k or its true interestingness is 1.0 (the
/// achievable maximum).
AggregateRun RunExperiment(MiningEngine& engine,
                           std::span<const Query> queries, QueryOperator op,
                           Algorithm algorithm, const MineOptions& options,
                           bool evaluate_quality);

}  // namespace phrasemine

#endif  // PHRASEMINE_EVAL_EXPERIMENT_H_
