#ifndef PHRASEMINE_SHARD_SHARDED_ENGINE_H_
#define PHRASEMINE_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/miner.h"
#include "core/query.h"
#include "phrase/phrase_dictionary.h"
#include "service/planner.h"
#include "service/thread_pool.h"
#include "text/corpus.h"

namespace phrasemine {

/// Sizing and policy knobs for ShardedEngine.
struct ShardedEngineOptions {
  /// Number of corpus partitions (clamped to at least 1). Each shard is a
  /// full single-shard MiningEngine over its slice of the documents.
  std::size_t num_shards = 4;
  /// Per-shard engine knobs. The extractor settings define the *global*
  /// phrase set: it is extracted once over the whole corpus (exactly what
  /// a monolithic engine would extract) and installed into every shard as
  /// a fixed phrase set with per-shard document frequencies -- see
  /// MiningEngineOptions::fixed_phrase_set. PhraseIds are therefore
  /// global: identical across shards and identical to a monolithic
  /// engine built from the same corpus and options.
  MiningEngineOptions engine;
  /// Scatter fan-out of the approximate (top-k') paths (GM, Simitsis,
  /// NRA, NRA-disk): each shard mines merge_headroom * k + merge_slack
  /// candidates before the gather refines exact global supports for the
  /// union. Exact and SMJ use exhaustive support scatter and ignore this.
  std::size_t merge_headroom = 4;
  std::size_t merge_slack = 16;
  /// Worker threads mining shards in parallel; 0 means num_shards.
  std::size_t mine_threads = 0;
  /// Cross-shard threshold exchange on the exhaustive merges (Exact,
  /// SMJ): after the scatter round the merge computes every union
  /// candidate's score upper bound from the scatter-complete supports
  /// (freq/codf sums are final there; the fill round can only add df,
  /// which never raises a score) and a global k-th floor from the
  /// candidates every shard reported (their supports are already
  /// complete, so their scores are exact), then drops candidates provably
  /// below the floor before any per-shard fill work. Ranked output is
  /// bitwise unchanged; MineResult::candidates_pruned counts the drops.
  /// Disabled automatically where the bound is not provable (second-order
  /// OR expansion, whose score is not monotone in df).
  bool threshold_exchange = true;
  /// Declares every shard's word lists disk-backed: each shard engine
  /// gets its OWN SimulatedDisk (engine.disk device model), so kNraDisk
  /// scatters run on genuinely parallel, independently-throttled devices
  /// -- the merged disk_ms is the slowest device's charge (makespan),
  /// not one serialized simulator's sum -- and CostPlanner routes the
  /// NRA candidate through the disk path (see the planner's routing
  /// rule). Merged with engine.disk_backed at Build (set on either
  /// surface wins) and written back to both.
  bool disk_backed = false;
  /// Per-shard resident-memory budget of the disk tier, in bytes: each
  /// shard's spill policy pins its own hottest lists (by its local term
  /// dfs) up to this budget and spills the cold tail to its device (see
  /// DiskResidentLists::ResidentSet). 0 keeps every list on disk, the
  /// paper's Section 5.5 protocol. Placement moves only modeled cost:
  /// ranked output is bitwise identical across budgets. Merged with
  /// engine.disk_resident_budget at Build (a nonzero value on either
  /// surface wins, fleet-level first) and written back to both.
  uint64_t disk_budget_per_shard = 0;
  /// When non-empty, the fleet persists itself as a family of index files
  /// under this path prefix: one "<prefix>.shardK.pmidx" engine file per
  /// shard plus a "<prefix>.fleet.pmidx" manifest recording the global
  /// phrase set and the global->shard document mapping. Build persists the
  /// family automatically and per-shard rebuilds re-persist their file;
  /// LoadFromFiles reopens the whole fleet from the mapped files. Any
  /// persist_path set on the embedded `engine` options is cleared at Build
  /// -- per-shard paths always derive from this prefix, so N shards can
  /// never race on one file (the service reshard path inherits engine
  /// options from a monolith, where that field addresses a single file).
  std::string persist_path;
  /// Test seam: maps a global document id to its owning shard (second
  /// argument is num_shards). Defaults to a SplitMix64 hash of the id.
  std::function<std::size_t(DocId, std::size_t)> partitioner;
};

/// Delta-corrected document frequency of a phrase on one shard: the
/// shard's base df plus the overlay's df delta, floored at zero. Shared
/// by the scatter-gather fill rounds and the subscription layer's
/// sharded rescorer so the exactness-critical integer arithmetic has
/// exactly one implementation.
uint32_t AdjustedShardDf(uint32_t base_df, PhraseId p,
                         const DeltaIndex* delta);

/// Recovers the integer co-occurrence count behind a stored list
/// probability (prob = count / base_df, so the product rounds back
/// exactly -- the same recovery DeltaIndex::AdjustedProb uses), applies
/// the shard overlay's co-occurrence delta and clamps to [0, df_adj].
uint32_t AdjustedShardCodf(double base_prob, uint32_t base_df, TermId term,
                           PhraseId p, const DeltaIndex* delta,
                           uint32_t df_adj);

/// One shard's contribution to a ShardedUpdateEvent: the shard's epoch,
/// structure identifiers and overlay snapshot as of the batch.
struct ShardUpdateEvent {
  uint64_t epoch = 0;
  uint64_t generation = 0;
  uint64_t structure_version = 0;
  /// The shard's overlay at that epoch (null right after its rebuild).
  std::shared_ptr<const DeltaIndex> delta;
};

/// Post-batch notification mirrored from MiningEngine::UpdateEvent for a
/// fleet: per-shard snapshots plus the batch's touched phrases merged
/// under the global PhraseId space (identical across shards by
/// construction). Delivered under the fleet's update mutex, in composite
/// epoch order, exactly once per ApplyUpdate / rebuild tier. Listeners
/// must be cheap and must not call back into the engine.
struct ShardedUpdateEvent {
  /// Composite epoch (sum of shard epochs) after the batch.
  uint64_t epoch = 0;
  /// One entry per shard, in shard order -- including shards this batch
  /// never routed a document to (their snapshot is simply unchanged).
  std::vector<ShardUpdateEvent> shards;
  /// Union of the batch's touched global PhraseIds, sorted/deduplicated.
  std::vector<PhraseId> touched;
  /// True for RebuildShard/Rebuild/RefreshDictionary completion events:
  /// structures (and, on a refresh, PhraseIds) were replaced, so
  /// consumers must drop derived state and re-mine.
  bool rebuilt = false;
};

/// Callback type for ShardedUpdateEvent delivery; see SetUpdateListener.
using ShardedUpdateListener = std::function<void(const ShardedUpdateEvent&)>;

/// Aggregate of one ShardedEngine::ApplyUpdate call: the summed
/// UpdateStats plus the per-shard epoch vector and per-shard rebuild
/// recommendations (so callers can rebuild only the shards that crossed
/// their threshold -- the point of the shrunken rebuild blast radius).
struct ShardedUpdateStats {
  /// Summed accounting; `epoch` is the composite sum of shard epochs and
  /// `rebuild_recommended` is true when any shard recommends one.
  UpdateStats total;
  std::vector<uint64_t> epochs;
  /// One flag per shard, latched from that shard's last ApplyUpdate.
  std::vector<uint8_t> rebuild_recommended;
};

/// What ShardedEngine::Mine hands back: the merged MineResult (with the
/// composite epoch vector filled) plus the ranked phrases' texts.
/// result.phrases[i].phrase is the *global* PhraseId -- every shard
/// shares one phrase set, so ids are portable and equal to the ids a
/// monolithic engine built from the same corpus would assign.
struct ShardedMineResult {
  MineResult result;
  std::vector<std::string> texts;
  /// Size of the merged candidate union before the top-k cut.
  std::size_t candidates = 0;
  /// Support lookups the fill round performed: (shard, candidate) pairs
  /// that needed df/codf refinement after the scatter. The threshold
  /// exchange's savings show up here (and in result.candidates_pruned);
  /// bench_shard_scaling reports both.
  std::size_t fill_slots = 0;
  /// True when the merge was support-exhaustive (Exact, SMJ): the ranked
  /// output provably equals the monolithic engine's, tie order included
  /// (both sides break equal scores by smaller PhraseId). False on the
  /// bounded top-k' paths.
  bool exact_merge = false;
  /// Largest k'-th local score across shards on the top-k' paths: no
  /// phrase outside the candidate union ranked above this in any shard.
  /// See the class comment for the (approximate) bound this supports.
  double candidate_floor = 0.0;
  /// Per-shard simulated-disk I/O in shard order (kNraDisk scatters
  /// only; all zeros otherwise). Every shard charges its OWN device, so
  /// entries are independent: result.disk_io sums them (aggregate device
  /// work) while result.disk_ms keeps the slowest device's charge (the
  /// parallel makespan).
  std::vector<DiskIoStats> shard_disk_io;
};

/// Hash-partitioned corpus mining: N single-shard MiningEngines sharing
/// one global phrase dictionary (per-shard document frequencies), mined
/// in parallel on a bounded ThreadPool and merged by a scatter-gather
/// that recomputes *global* interestingness from summed per-shard
/// supports, joined by global PhraseId.
///
/// Identity across shards: the vocabulary is copied into every shard
/// (and kept in sync by broadcasting ingested terms through
/// MiningEngine::InternTerms), so TermIds and parsed Query objects are
/// portable; the phrase set is extracted once over the full corpus, so
/// PhraseIds are portable too, and both match a monolithic engine built
/// from the same corpus and options.
///
/// Exactness per algorithm (see README "Sharding" for the derivation):
///  * kExact: exact. The scatter mirrors ExactMiner per shard (a full
///    forward scan of the shard's sub-collection), the gather sums
///    freq(p, D'_s), df_s, |D'_s| and |D_s| -- all plain sums over the
///    disjoint partition -- and re-evaluates Eq. 1/PMI from the totals,
///    which is bitwise the monolithic computation, tie order included.
///  * kSmj: exact over full lists. The scatter unions every per-term
///    (phrase, prob) entry of the shard's word lists (delta-overlaid
///    under pending updates), the gather recovers integer co-occurrence
///    counts, sums them, and recomputes P(q|p) = sum codf / sum df --
///    bitwise the probability a monolithic list would store. Sharded SMJ
///    always merges full lists (a truncation fraction < 1 is a
///    construction-time decision this path does not offer).
///  * kGm, kSimitsis, kNra, kNraDisk: approximate with a documented
///    bound. Each shard mines top-k' = merge_headroom * k + merge_slack
///    locally; the gather refines *exact* global supports for the
///    candidate union, so every reported score is exact -- only candidate
///    recall is bounded. A phrase missed by every shard scored below that
///    shard's k'-th local score; because a summed-support ratio is a
///    mediant of the per-shard ratios, a single-term query's missed
///    phrases are provably below max_s(floor_s) (ShardedMineResult::
///    candidate_floor), while multi-term aggregation makes the bound
///    heuristic (a phrase mediocre everywhere can sum above it).
///
/// Threshold exchange (exhaustive merges): the scatter round already
/// carries every reporting shard's complete freq/codf supports, so each
/// union candidate's score computed from the scatter sums is an upper
/// bound on its final score (the fill round only adds df terms to
/// denominators, and every supported measure/score is non-increasing in
/// df), and candidates reported by all shards have exact scores already.
/// The k-th best of those exact scores is a lower bound on the global
/// k-th result score, so any candidate whose upper bound falls strictly
/// below it is dropped before the fill round does per-shard support work
/// -- provably without changing the ranked output. See README "Sharding".
///
/// Updates: ApplyUpdate routes inserts to their owning shard (documents
/// are numbered globally: build-time ids first, ingested ids after) and
/// translates deletes to shard-local ids; only the owning shard's epoch
/// advances. Results carry the per-shard epoch vector, and Rebuild runs
/// shard-by-shard -- ingest interleaves between shards and queries never
/// lose more than one shard's freshness at a time. A shard rebuild keeps
/// the frozen global phrase set (absorbing the shard's delta into its
/// base structures); phrases that only became frequent through updates
/// enter via RefreshDictionary, the heavyweight tier that re-extracts
/// the global set over all live documents and swaps every shard at once.
///
/// Thread-safety: Mine/ParseQuery/PhraseText/epochs/epoch/update_stats
/// may run concurrently from any threads; ApplyUpdate, Rebuild,
/// RebuildShard and RefreshDictionary serialize on an internal update
/// mutex and are safe against concurrent mines. shard() references are
/// stable except across RefreshDictionary, which swaps the fleet under
/// an exclusive lock the readers above take shared. Structural mutation
/// (move) requires external exclusive access.
class ShardedEngine {
 public:
  using Options = ShardedEngineOptions;

  /// Extracts the global phrase set, partitions `corpus` and builds every
  /// shard (in parallel on the mining pool). Each shard corpus gets a
  /// full copy of the source vocabulary so term ids stay global.
  static ShardedEngine Build(Corpus corpus, Options options = {});

  /// Reopens a fleet persisted under `prefix` (see Options::persist_path):
  /// the manifest restores the global phrase set and the global->shard
  /// document mapping, and every shard engine is reconstructed from its
  /// own mapped index file (in parallel on the mining pool). `options`
  /// supplies the runtime knobs (threads, merge headroom, disk tier...);
  /// num_shards and persist_path are overridden by the manifest/prefix and
  /// engine.fixed_phrase_set by the restored global set. Pending deltas
  /// were never part of the files: the reopened fleet serves the state as
  /// of the last build/rebuild/SaveToFiles.
  static Result<ShardedEngine> LoadFromFiles(const std::string& prefix,
                                             Options options = {});

  /// Writes the whole family under `prefix` now: every shard's engine file
  /// plus the fleet manifest. Serializes with updates and rebuilds. Base
  /// structures only -- per-shard pending deltas are not persisted (call
  /// Rebuild() first for a checkpoint that includes them).
  Status SaveToFiles(const std::string& prefix) const;

  /// Outcome of the last automatic persist (Build and the rebuild tiers
  /// re-persist when Options::persist_path is set); OK when persistence
  /// is off.
  const Status& persist_status() const { return persist_status_; }

  /// File names of a fleet persisted under `prefix`.
  static std::string ShardFilePath(const std::string& prefix,
                                   std::size_t shard);
  static std::string FleetManifestPath(const std::string& prefix);

  ShardedEngine(ShardedEngine&&) = default;
  ShardedEngine& operator=(ShardedEngine&&) = default;

  // --- Querying -------------------------------------------------------------

  /// Parses against the shared vocabulary (shard 0's copy; all identical).
  Result<Query> ParseQuery(std::string_view text, QueryOperator op) const;

  /// Scatter-gathers one query across all shards. `options.delta` must be
  /// null: per-shard overlays are applied internally. See the class
  /// comment for the per-algorithm exactness contract.
  ShardedMineResult Mine(const Query& query, Algorithm algorithm,
                         const MineOptions& options = {});

  /// Lexical form of a global phrase id (shard 0's fixed-slot file; all
  /// shards share the phrase set, so any would do).
  std::string PhraseText(PhraseId id) const;

  /// Per-shard cost-model inputs for one query, gathered under the fleet
  /// lock so a dictionary refresh cannot swap the engines away mid-read
  /// (callers must never cache per-shard planners across a refresh).
  /// Feed the result to CostPlanner::PlanAcrossShards.
  std::vector<PlannerInputs> GatherPlannerInputs(
      const Query& query, const MineOptions& options) const;

  // --- Live updates ---------------------------------------------------------

  /// Routes one batch to the owning shards. Delete ids address the global
  /// live numbering (build-time ids below the original corpus size,
  /// ingested ids after, in ingest order); unknown or already-deleted ids
  /// are ignored. Serializes with the rebuild entry points.
  ShardedUpdateStats ApplyUpdate(const UpdateBatch& batch);

  /// Installs (or, with null, clears) the fleet-level post-batch update
  /// listener; see ShardedUpdateEvent for the delivery contract.
  /// Serializes against in-flight ApplyUpdate and the rebuild tiers: once
  /// SetUpdateListener(nullptr) returns, no further callback will run.
  void SetUpdateListener(ShardedUpdateListener listener);

  /// Rebuilds every shard, one at a time; ingest may interleave between
  /// shards and queries keep running throughout. The global phrase set
  /// stays frozen (see RefreshDictionary).
  void Rebuild();

  /// Rebuilds a single shard (the shrunken blast radius of the sharded
  /// design) and compacts the global->local document mapping for it.
  void RebuildShard(std::size_t shard);

  /// The heavyweight rebuild tier: absorbs every shard's pending updates,
  /// re-extracts the global phrase set over all live documents, rebuilds
  /// every shard against it offline and swaps the fleet in atomically.
  /// This is where phrases that entered the corpus through updates join
  /// the dictionary (the paper's "new phrases enter P at the next offline
  /// rebuild", fleet-wide). Ingest stalls for the duration; queries keep
  /// being served from the old fleet until the swap. Global PhraseIds are
  /// reassigned; per-shard epochs continue monotonically so epoch-keyed
  /// caches can never resurrect a pre-refresh result.
  void RefreshDictionary();

  /// Per-shard epoch vector, in shard order.
  std::vector<uint64_t> epochs() const;

  /// Composite epoch: the sum of shard epochs (monotone under updates).
  uint64_t epoch() const;

  /// Summed per-shard accounting as of the last update.
  UpdateStats update_stats() const;

  // --- Component access (planner, benchmarks, tests) ------------------------

  std::size_t num_shards() const { return shards_.size(); }
  /// Raw shard access for tests/benchmarks. NOT guarded against
  /// RefreshDictionary (which destroys and replaces every engine): do
  /// not call concurrently with one or hold the reference across one --
  /// the synchronized entry points (Mine, ParseQuery, PhraseText,
  /// GatherPlannerInputs, epochs) are the refresh-safe surface.
  const MiningEngine& shard(std::size_t i) const { return *shards_[i]; }
  MiningEngine& shard(std::size_t i) { return *shards_[i]; }

  /// Runs fn(shard engine) under the shared fleet lock, so a concurrent
  /// RefreshDictionary cannot swap the engines away mid-read -- the
  /// refresh-safe alternative to shard() for concurrent readers (the
  /// subscription rescorer reads per-shard base lists through this).
  template <typename Fn>
  auto WithShard(std::size_t i, Fn&& fn) const {
    std::shared_lock fleet_lock(*shards_mu_);
    return fn(*shards_[i]);
  }

  /// The frozen global phrase set shared by all shards (per-shard df
  /// lives in each shard's own dictionary clone).
  const PhraseDictionary& phrase_set() const { return *global_set_; }

  /// Documents across all shards at build time plus ingested ones (dead
  /// ids included; global numbering never compacts).
  std::size_t num_docs() const;

  const Options& options() const { return options_; }

  /// Toggles the threshold exchange at runtime (benchmarks measure the
  /// same engine with the round on and off; results are identical either
  /// way -- the exchange only prunes provably-losing fill work). Not
  /// synchronized: do not flip concurrently with Mine.
  void SetThresholdExchange(bool enabled) {
    options_.threshold_exchange = enabled;
  }

  /// Re-budgets every shard's disk tier at runtime (benchmarks sweep
  /// resident fractions on one built fleet; results are identical at
  /// every budget -- placement moves modeled cost, never contents).
  /// Requires external exclusive access: no concurrent Mine, update or
  /// rebuild calls in flight.
  void SetDiskBudgetPerShard(uint64_t budget_bytes);

  /// Broadcasts observed per-term query counts to every shard's disk
  /// tier (MiningEngine::SetTermPopularity): each shard re-derives its
  /// hotness order from the shared snapshot and lazily re-places its own
  /// resident set on the next kNraDisk mine. TermIds are global across
  /// the fleet, so one service-level count map serves all shards. Safe
  /// against concurrent mines (the per-shard install takes each shard's
  /// exclusive structure lock).
  void SetTermPopularity(std::shared_ptr<const TermPopularity> observed);

 private:
  ShardedEngine() = default;

  /// Where a global document id lives.
  struct DocLocation {
    uint32_t shard = 0;
    DocId local = 0;
  };

  std::size_t ShardOf(DocId global) const;

  /// Runs fn(shard_index) for every shard on the pool, inline when the
  /// pool is saturated or shut down, and waits for all of them.
  void ParallelOverShards(const std::function<void(std::size_t)>& fn);

  /// RebuildShard body; caller holds update_mu_.
  void RebuildShardLocked(std::size_t shard);

  /// Fires a rebuilt-flagged ShardedUpdateEvent with the fleet's current
  /// per-shard snapshots; caller holds update_mu_.
  void NotifyRebuiltLocked();

  /// Writes the fleet manifest file (global dictionary + document
  /// mapping); caller holds update_mu_ or has exclusive access.
  Status SaveManifestLocked(const std::string& prefix) const;

  Options options_;
  Status persist_status_;
  std::shared_ptr<const PhraseDictionary> global_set_;
  std::vector<std::unique_ptr<MiningEngine>> shards_;
  /// Cached sum_p df(p) / |D_s| per shard for the cost model; refreshed
  /// whenever a shard's indexes rebuild.
  std::vector<double> shard_avg_doc_phrases_;
  std::unique_ptr<ThreadPool> pool_;
  /// Fleet lock: shared by everything that dereferences shards_,
  /// exclusive only for RefreshDictionary's swap.
  std::unique_ptr<std::shared_mutex> shards_mu_ =
      std::make_unique<std::shared_mutex>();

  /// Guards the global document numbering; also serializes
  /// ApplyUpdate and the rebuild tiers against each other (per-shard
  /// engines handle their own mine/update synchronization).
  std::unique_ptr<std::mutex> update_mu_ = std::make_unique<std::mutex>();
  std::vector<DocLocation> locate_;            // indexed by global id
  std::vector<uint8_t> dead_;                  // indexed by global id
  std::size_t num_dead_ = 0;
  /// Global ids in shard-local order (dead ids kept until that shard's
  /// rebuild compacts the local numbering).
  std::vector<std::vector<DocId>> shard_globals_;
  /// Latched per-shard rebuild recommendations from the last ApplyUpdate.
  std::vector<uint8_t> rebuild_recommended_;
  /// Fleet-level update listener; written and fired under update_mu_.
  ShardedUpdateListener update_listener_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_SHARD_SHARDED_ENGINE_H_
