#include "shard/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/cancel.h"
#include "common/check.h"
#include "common/io_util.h"
#include "common/stopwatch.h"
#include "core/delta_index.h"
#include "core/interestingness.h"
#include "core/kernels.h"
#include "core/scoring.h"
#include "index/word_lists.h"
#include "obs/trace.h"
#include "phrase/phrase_extractor.h"
#include "storage/index_file.h"
#include "testing/failpoint.h"

namespace phrasemine {

uint32_t AdjustedShardDf(uint32_t base_df, PhraseId p,
                         const DeltaIndex* delta) {
  int64_t df = static_cast<int64_t>(base_df);
  if (delta != nullptr) df += delta->DfDelta(p);
  return static_cast<uint32_t>(std::max<int64_t>(df, 0));
}

uint32_t AdjustedShardCodf(double base_prob, uint32_t base_df, TermId term,
                           PhraseId p, const DeltaIndex* delta,
                           uint32_t df_adj) {
  int64_t codf = std::llround(base_prob * static_cast<double>(base_df));
  if (delta != nullptr) codf += delta->CoDelta(term, p);
  return static_cast<uint32_t>(
      std::clamp<int64_t>(codf, 0, static_cast<int64_t>(df_adj)));
}

namespace {

/// How a sharded mine scatters and gathers. Exact and SMJ enumerate every
/// support their monolithic counterpart would read (exhaustive), so the
/// merge is exact; the other algorithms discover candidates with a bounded
/// per-shard top-k' and the gather refines exact global supports for the
/// union only.
enum class MergeMode {
  kCountExhaustive,  ///< kExact: full sub-collection forward scan.
  kCountTopK,        ///< kGm/kSimitsis: local mine, then count refinement.
  kListExhaustive,   ///< kSmj: full per-term list union.
  kListTopK,         ///< kNra/kNraDisk: local mine, then list refinement.
};

MergeMode ModeFor(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kExact:
      return MergeMode::kCountExhaustive;
    case Algorithm::kGm:
    case Algorithm::kSimitsis:
      return MergeMode::kCountTopK;
    case Algorithm::kSmj:
      return MergeMode::kListExhaustive;
    case Algorithm::kNra:
    case Algorithm::kNraDisk:
      return MergeMode::kListTopK;
  }
  return MergeMode::kCountTopK;
}

bool IsCountMode(MergeMode mode) {
  return mode == MergeMode::kCountExhaustive || mode == MergeMode::kCountTopK;
}

bool IsTopKMode(MergeMode mode) {
  return mode == MergeMode::kCountTopK || mode == MergeMode::kListTopK;
}

/// Severity order for merging per-shard guarantees (worst wins).
int GuaranteeRank(UpdateGuarantee g) {
  switch (g) {
    case UpdateGuarantee::kFresh:
      return 0;
    case UpdateGuarantee::kExactUnderDelta:
      return 1;
    case UpdateGuarantee::kApproximateUnderDelta:
      return 2;
    case UpdateGuarantee::kStale:
      return 3;
  }
  return 3;
}

/// One candidate's supports within one shard (scatter output). The phrase
/// id is global -- every shard clones the same frozen phrase set -- which
/// is what lets the gather join candidates with integer keys.
struct ShardCandidate {
  PhraseId phrase = kInvalidPhraseId;
  uint32_t df = 0;
  uint32_t freq_subset = 0;           // count modes
  std::vector<uint32_t> codf;         // list modes, aligned with query terms
};

/// Everything one shard contributes in the scatter round.
struct ShardScatter {
  std::vector<ShardCandidate> candidates;
  std::size_t subcollection = 0;      // count modes: |D'_s|
  std::size_t num_docs = 0;           // shard corpus size |D_s|
  uint64_t epoch = 0;
  UpdateGuarantee guarantee = UpdateGuarantee::kFresh;
  uint64_t entries_read = 0;
  double disk_ms = 0.0;
  DiskIoStats disk_io;  // this shard's own device (kNraDisk scatters)
  /// k'-th local score on the top-k' paths when the shard's result was
  /// truncated at k' (i.e. more could exist below); 0 when it reported
  /// everything it found.
  double local_floor = 0.0;
  /// Non-OK when the shard's local mine aborted (deadline fired inside the
  /// shard miner, or its disk tier latched an error): the leg's candidates
  /// are a partial view and the merge must abort with this status.
  Status status;
};

/// Supports one shard computed for union candidates in the fill round.
struct PartialSupport {
  uint32_t df = 0;
  uint32_t freq_subset = 0;
  std::vector<uint32_t> codf;
};

/// One merged candidate with summed global supports.
struct GlobalCandidate {
  PhraseId phrase = kInvalidPhraseId;
  uint64_t df = 0;
  uint64_t freq_subset = 0;
  std::vector<uint64_t> codf;
};

int64_t ClampCount(int64_t value, int64_t hi) {
  return std::clamp<int64_t>(value, 0, hi);
}

/// The overlay actually in effect for a snapshot (null when none).
const DeltaIndex* PendingDelta(const EpochDelta& snap) {
  return snap.delta != nullptr && snap.delta->pending_updates() > 0
             ? snap.delta.get()
             : nullptr;
}

// Every scatter/fill helper below validates the shard's structure
// generation against the caller's snapshot under the shared structure
// lock and reports false on mismatch: the caller then retries the whole
// mine with fresh snapshots, so one merged result never mixes pre- and
// post-rebuild supports. Plain ingests don't perturb a running mine --
// the overlay is the snapshot's immutable DeltaIndex, not the live one.

/// Exhaustive count scatter: mirrors ExactMiner over the shard's base
/// structures (count-based methods cannot consult the overlay, so under
/// pending updates the shard result -- like the monolithic one -- is
/// stale and stamped as such).
bool CountScatter(MiningEngine& engine, const Query& query,
                  Algorithm algorithm, const EpochDelta& snap,
                  ShardScatter* out) {
  *out = ShardScatter{};
  out->epoch = snap.epoch;
  out->guarantee = GuaranteeFor(algorithm, PendingDelta(snap) != nullptr);
  return engine.WithSharedStructures([&]() -> bool {
    if (engine.list_generation() != snap.generation) return false;
    const std::vector<DocId> subset =
        EvalSubCollection(query, engine.inverted());
    out->subcollection = subset.size();
    out->num_docs = engine.forward().num_docs();
    // Dense scratch counters, the ExactMiner pattern; thread-local so a
    // pool worker pays the dictionary-sized allocation once, not per
    // query. Touched entries are reset on exit, keeping the array
    // all-zero between uses (grow-only across engines).
    thread_local std::vector<uint32_t> counts;
    if (counts.size() < engine.dict().size()) {
      counts.resize(engine.dict().size(), 0);
    }
    std::vector<PhraseId> touched;
    for (DocId d : subset) {
      for (PhraseId p : engine.forward().Phrases(d, engine.dict())) {
        if (counts[p] == 0) touched.push_back(p);
        ++counts[p];
        ++out->entries_read;
      }
    }
    out->candidates.reserve(touched.size());
    for (PhraseId p : touched) {
      out->candidates.push_back(
          ShardCandidate{p, engine.dict().df(p), counts[p], {}});
      counts[p] = 0;
    }
    return true;
  });
}

/// Exhaustive list scatter: unions every per-term (phrase, prob) entry of
/// the shard's full word lists -- delta-overlaid, so the shard stays exact
/// under pending updates exactly the way monolithic SMJ does. A phrase
/// qualifies as a candidate with a single positive term (OR semantics);
/// the gather applies the global AND filter, which is what catches
/// phrases whose terms co-occur only across shards.
bool ListScatter(MiningEngine& engine, const Query& query,
                 Algorithm algorithm, const EpochDelta& snap,
                 ShardScatter* out) {
  const std::size_t r = query.terms.size();
  engine.EnsureIdOrderedLists(query.terms);  // includes the score lists
  const DeltaIndex* delta = PendingDelta(snap);
  *out = ShardScatter{};
  out->epoch = snap.epoch;
  out->guarantee =
      GuaranteeFor(algorithm, delta != nullptr, /*smj_full_lists=*/true);
  return engine.WithSharedStructures([&]() -> bool {
    if (engine.list_generation() != snap.generation) return false;
    for (TermId t : query.terms) {
      if (!engine.word_lists().Has(t)) return false;
    }
    out->num_docs = engine.forward().num_docs();
    std::unordered_map<PhraseId, std::size_t> slot;
    auto fold = [&](std::size_t term_index, PhraseId phrase, double prob) {
      const TermId t = query.terms[term_index];
      const uint32_t base_df = engine.dict().df(phrase);
      const uint32_t df_adj = AdjustedShardDf(base_df, phrase, delta);
      const uint32_t codf =
          AdjustedShardCodf(prob, base_df, t, phrase, delta, df_adj);
      ++out->entries_read;
      if (codf == 0) return;
      auto [it, inserted] = slot.try_emplace(phrase, out->candidates.size());
      if (inserted) {
        ShardCandidate cand;
        cand.phrase = phrase;
        cand.df = df_adj;
        cand.codf.assign(r, 0);
        out->candidates.push_back(std::move(cand));
      }
      out->candidates[it->second].codf[term_index] = codf;
    };
    // The engine's cached id-ordered lists carry the SoA views the fold
    // streams over (contiguous id/prob arrays), and double as the
    // pre-sorted base the delta extras merge against -- no per-query
    // re-sort. Only a full-fraction cache is usable (sharded SMJ merges
    // full lists); the score-ordered scan below is the fallback when a
    // concurrent invalidation or a truncated fraction removed it.
    const WordIdOrderedLists* idl = engine.id_ordered_lists();
    const bool use_idl = idl != nullptr && idl->fraction() >= 1.0;
    for (std::size_t i = 0; i < r; ++i) {
      const TermId t = query.terms[i];
      if (use_idl && idl->Has(t)) {
        const SoABlockList* soa = idl->soa(t);
        const PhraseId* ids = soa->ids();
        const double* probs = soa->probs();
        const std::size_t len = soa->size();
        for (std::size_t k = 0; k < len; ++k) fold(i, ids[k], probs[k]);
        if (delta != nullptr) {
          for (const ListEntry& extra :
               delta->ExtraIdOrderedEntries(t, idl->list(t))) {
            fold(i, extra.phrase, extra.prob);
          }
        }
        continue;
      }
      const SharedWordList base = engine.word_lists().shared(t);
      for (const ListEntry& entry : *base) fold(i, entry.phrase, entry.prob);
      if (delta != nullptr) {
        // Pairs whose co-occurrence became positive purely through
        // updates are absent from the stored list; enumerate them the
        // same way the monolithic SMJ bundle assembly does.
        const SharedWordList id_base = WordIdOrderedLists::IdOrderPrefix(
            std::span<const ListEntry>(*base));
        for (const ListEntry& extra : delta->ExtraIdOrderedEntries(
                 t, std::span<const ListEntry>(*id_base))) {
          fold(i, extra.phrase, extra.prob);
        }
      }
    }
    return true;
  });
}

/// Top-k' discovery scatter: runs the shard's own miner and reports the
/// result phrases as candidates, supports to be refined in the fill
/// round (against the caller's snapshot -- the local mine may race onto
/// a newer overlay, which only affects which identities it discovers).
bool TopKScatter(MiningEngine& engine, const Query& query,
                 Algorithm algorithm, const MineOptions& options,
                 std::size_t k_prime, const EpochDelta& snap,
                 ShardScatter* out) {
  MineOptions local = options;
  local.k = k_prime;
  // The sharded merge narrates its own scatter/fill/gather story; a
  // per-shard miner trace would be discarded unseen, so don't build one.
  local.trace = false;
  // Local top-k' candidates are identities for the merge, never
  // materialized as text -- billing every shard device k' random phrase
  // lookups would add a constant per-device cost that does not
  // partition. The merged top-k's texts are resolved at the gather from
  // the router's in-memory phrase file (Assemble below), so the sharded
  // device model deliberately covers word-list I/O only; the monolithic
  // kNraDisk path keeps the paper's k-lookup materialization charge.
  // See docs/disk_tier.md.
  local.charge_phrase_lookups = false;
  const MineResult mined = engine.Mine(query, algorithm, local);
  *out = ShardScatter{};
  out->status = mined.status;
  out->epoch = snap.epoch;
  out->guarantee = GuaranteeFor(algorithm, PendingDelta(snap) != nullptr,
                                /*smj_full_lists=*/true);
  out->entries_read = mined.entries_read;
  out->disk_ms = mined.disk_ms;
  out->disk_io = mined.disk_io;
  out->subcollection = mined.subcollection_size;
  if (mined.phrases.size() >= k_prime && !mined.phrases.empty()) {
    out->local_floor = mined.phrases.back().interestingness;
  }
  engine.WithSharedStructures([&] {
    out->num_docs = engine.forward().num_docs();
    out->candidates.reserve(mined.phrases.size());
    for (const MinedPhrase& mp : mined.phrases) {
      // A dictionary refresh between the mine and this read could hand
      // back ids from the previous set; an out-of-range one must not
      // crash (the fill round's generation check rejects the attempt).
      if (mp.phrase >= engine.dict().size()) continue;
      out->candidates.push_back(ShardCandidate{mp.phrase, 0, 0, {}});
    }
  });
  return true;
}

/// Count-mode fill: document frequency for every needed candidate, plus
/// (when `need_freq`) its sub-collection frequency via one forward scan --
/// the supports the gather sums into the global Eq. 1 inputs.
bool CountFill(MiningEngine& engine, const Query& query,
               std::span<const GlobalCandidate> cands,
               std::span<const uint8_t> need, bool need_freq,
               const EpochDelta& snap, std::size_t* subcollection,
               std::vector<PartialSupport>* out) {
  out->assign(cands.size(), PartialSupport{});
  return engine.WithSharedStructures([&]() -> bool {
    if (engine.list_generation() != snap.generation) return false;
    std::unordered_map<PhraseId, std::size_t> slot;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!need[i]) continue;
      const PhraseId p = cands[i].phrase;
      if (p >= engine.dict().size()) continue;
      (*out)[i].df = engine.dict().df(p);
      if (need_freq) slot.emplace(p, i);
    }
    if (need_freq) {
      const std::vector<DocId> subset =
          EvalSubCollection(query, engine.inverted());
      *subcollection = subset.size();
      for (DocId d : subset) {
        for (PhraseId p : engine.forward().Phrases(d, engine.dict())) {
          auto it = slot.find(p);
          if (it != slot.end()) ++(*out)[it->second].freq_subset;
        }
      }
    }
    return true;
  });
}

/// List-mode fill: delta-corrected df and per-term co-occurrence counts
/// for every needed candidate, via one pass over each term's word list.
bool ListFill(MiningEngine& engine, const Query& query,
              std::span<const GlobalCandidate> cands,
              std::span<const uint8_t> need, bool need_codf,
              const EpochDelta& snap, std::vector<PartialSupport>* out) {
  const std::size_t r = query.terms.size();
  if (need_codf) engine.EnsureIdOrderedLists(query.terms);
  const DeltaIndex* delta = PendingDelta(snap);
  out->assign(cands.size(), PartialSupport{});
  return engine.WithSharedStructures([&]() -> bool {
    if (engine.list_generation() != snap.generation) return false;
    if (need_codf) {
      for (TermId t : query.terms) {
        if (!engine.word_lists().Has(t)) return false;
      }
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!need[i]) continue;
      const PhraseId p = cands[i].phrase;
      if (p >= engine.dict().size()) continue;
      (*out)[i].df = AdjustedShardDf(engine.dict().df(p), p, delta);
      if (need_codf) (*out)[i].codf.assign(r, 0);
    }
    if (!need_codf) return true;

    const WordIdOrderedLists* idl = engine.id_ordered_lists();
    bool use_idl = idl != nullptr && idl->fraction() >= 1.0;
    if (use_idl) {
      for (TermId t : query.terms) use_idl = use_idl && idl->Has(t);
    }
    if (use_idl) {
      // Kernel path: one galloping pass per term over the id-ordered SoA
      // list gathers every needed candidate's stored probability (0.0
      // when absent). AdjustedShardCodf on a 0.0 base recovers exactly the
      // delta-only count the scan path computes for absent candidates,
      // so the two paths produce identical supports.
      std::vector<std::pair<PhraseId, std::size_t>> probes;
      probes.reserve(cands.size());
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!need[i]) continue;
        if (cands[i].phrase >= engine.dict().size()) continue;
        probes.emplace_back(cands[i].phrase, i);
      }
      std::sort(probes.begin(), probes.end());
      std::vector<PhraseId> probe_ids(probes.size());
      for (std::size_t m = 0; m < probes.size(); ++m) {
        probe_ids[m] = probes[m].first;
      }
      std::vector<double> gathered(probes.size());
      for (std::size_t j = 0; j < r; ++j) {
        const TermId t = query.terms[j];
        kernels::GatherProbes(*idl->soa(t), probe_ids, gathered.data());
        for (std::size_t m = 0; m < probes.size(); ++m) {
          const std::size_t i = probes[m].second;
          const PhraseId p = probes[m].first;
          const uint32_t base_df = engine.dict().df(p);
          (*out)[i].codf[j] = AdjustedShardCodf(gathered[m], base_df, t, p, delta,
                                           (*out)[i].df);
        }
      }
      return true;
    }

    // Fallback scan over the score-ordered lists (truncated id-list cache
    // or a concurrent invalidation), the pre-kernel reference path.
    std::unordered_map<PhraseId, std::size_t> slot;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!need[i]) continue;
      const PhraseId p = cands[i].phrase;
      if (p >= engine.dict().size()) continue;
      slot.emplace(p, i);
    }
    std::vector<uint8_t> in_base(cands.size());
    for (std::size_t j = 0; j < r; ++j) {
      const TermId t = query.terms[j];
      std::fill(in_base.begin(), in_base.end(), 0);
      for (const ListEntry& entry : engine.word_lists().list(t)) {
        auto it = slot.find(entry.phrase);
        if (it == slot.end()) continue;
        const std::size_t i = it->second;
        in_base[i] = 1;
        const uint32_t base_df = engine.dict().df(entry.phrase);
        (*out)[i].codf[j] = AdjustedShardCodf(entry.prob, base_df, t,
                                         entry.phrase, delta, (*out)[i].df);
      }
      if (delta == nullptr) continue;
      // Candidates absent from the base list may still have a positive
      // co-occurrence purely through updates.
      for (const auto& [p, i] : slot) {
        if (in_base[i]) continue;
        (*out)[i].codf[j] = static_cast<uint32_t>(ClampCount(
            delta->CoDelta(t, p), static_cast<int64_t>((*out)[i].df)));
      }
    }
    return true;
  });
}

/// Cost-model input cached per shard: sum_p df(p) / |D_s|.
double AvgDocPhrases(const MiningEngine& engine) {
  return engine.WithSharedStructures([&] {
    uint64_t total_df = 0;
    for (PhraseId p = 0; p < engine.dict().size(); ++p) {
      total_df += engine.dict().df(p);
    }
    const std::size_t num_docs = engine.corpus().size();
    return num_docs == 0 ? 0.0
                         : static_cast<double>(total_df) /
                               static_cast<double>(num_docs);
  });
}

}  // namespace

ShardedEngine ShardedEngine::Build(Corpus corpus, Options options) {
  if (options.num_shards == 0) options.num_shards = 1;
  // One disk-tier configuration: the fleet-level switches are merged
  // with any tier declared on the embedded engine options (set-wins, so
  // a tier configured on either surface survives), then written back to
  // both so every consumer of options_.engine -- Build,
  // RefreshDictionary, the service's reshard path -- sees the same
  // per-shard tier.
  options.disk_backed = options.disk_backed || options.engine.disk_backed;
  if (options.disk_budget_per_shard == 0) {
    options.disk_budget_per_shard = options.engine.disk_resident_budget;
  }
  options.engine.disk_backed = options.disk_backed;
  options.engine.disk_resident_budget = options.disk_budget_per_shard;
  // Per-shard persist paths always derive from the fleet-level prefix: an
  // engine-level persist_path would send every shard to the same file, so
  // it is cleared unconditionally (see Options::persist_path).
  options.engine.persist_path.clear();
  ShardedEngine sharded;
  sharded.options_ = std::move(options);
  const std::size_t n = sharded.options_.num_shards;

  // The global phrase set: exactly the dictionary a monolithic engine
  // would extract from this corpus. Every shard clones it (global ids)
  // and recounts dfs over its own slice.
  PhraseExtractor extractor(sharded.options_.engine.extractor);
  sharded.global_set_ =
      std::make_shared<const PhraseDictionary>(extractor.Extract(corpus));
  MiningEngineOptions shard_options = sharded.options_.engine;
  shard_options.fixed_phrase_set = sharded.global_set_;

  // Partition the documents; every shard corpus carries a full copy of the
  // source vocabulary so term ids stay global.
  std::vector<Corpus> parts(n);
  for (Corpus& part : parts) part.vocab() = corpus.vocab();
  sharded.shard_globals_.resize(n);
  sharded.locate_.reserve(corpus.size());
  sharded.dead_.assign(corpus.size(), 0);
  for (DocId g = 0; g < corpus.size(); ++g) {
    const auto s = static_cast<uint32_t>(sharded.ShardOf(g));
    sharded.locate_.push_back(
        {s, static_cast<DocId>(sharded.shard_globals_[s].size())});
    sharded.shard_globals_[s].push_back(g);
    parts[s].AddDocument(corpus.doc(g));
  }

  ThreadPoolOptions pool_options;
  pool_options.num_threads =
      sharded.options_.mine_threads != 0 ? sharded.options_.mine_threads : n;
  pool_options.queue_capacity = std::max<std::size_t>(4 * n, 64);
  sharded.pool_ = std::make_unique<ThreadPool>(pool_options);

  sharded.shards_.resize(n);
  sharded.shard_avg_doc_phrases_.resize(n);
  sharded.ParallelOverShards([&](std::size_t s) {
    MiningEngineOptions opts = shard_options;
    if (!sharded.options_.persist_path.empty()) {
      opts.persist_path = ShardFilePath(sharded.options_.persist_path, s);
    }
    sharded.shards_[s] = std::make_unique<MiningEngine>(
        MiningEngine::Build(std::move(parts[s]), opts));
    sharded.shard_avg_doc_phrases_[s] = AvgDocPhrases(*sharded.shards_[s]);
  });
  sharded.rebuild_recommended_.assign(n, 0);
  if (!sharded.options_.persist_path.empty()) {
    // Each shard already persisted itself during its Build; surface the
    // first failure, then write the fleet manifest alongside them.
    for (std::size_t s = 0; s < n && sharded.persist_status_.ok(); ++s) {
      sharded.persist_status_ = sharded.shards_[s]->persist_status();
    }
    if (sharded.persist_status_.ok()) {
      sharded.persist_status_ =
          sharded.SaveManifestLocked(sharded.options_.persist_path);
    }
  }
  return sharded;
}

std::string ShardedEngine::ShardFilePath(const std::string& prefix,
                                         std::size_t shard) {
  return prefix + ".shard" + std::to_string(shard) + ".pmidx";
}

std::string ShardedEngine::FleetManifestPath(const std::string& prefix) {
  return prefix + ".fleet.pmidx";
}

Status ShardedEngine::SaveManifestLocked(const std::string& prefix) const {
  // The manifest is what the shard files cannot carry: the frozen global
  // dictionary (global dfs; every shard file stores its per-shard clone)
  // and the global document numbering. shard_globals_ is the source of
  // truth for the mapping -- locate_ is derived from it at load, and the
  // stale locate_ entries of compacted dead documents are never read.
  BinaryWriter payload;
  payload.PutU32(static_cast<uint32_t>(shards_.size()));
  global_set_->Serialize(&payload);
  payload.PutU64(locate_.size());
  for (uint8_t flag : dead_) payload.PutU8(flag);
  for (const std::vector<DocId>& globals : shard_globals_) {
    payload.PutU64(globals.size());
    for (DocId g : globals) payload.PutU32(g);
  }
  IndexFileWriter writer;
  writer.AddSection(IndexSection::kManifest, payload.TakeBuffer());
  return writer.WriteTo(FleetManifestPath(prefix));
}

Status ShardedEngine::SaveToFiles(const std::string& prefix) const {
  std::scoped_lock update_lock(*update_mu_);
  std::shared_lock fleet_lock(*shards_mu_);
  // Engine files carry base structures only, so a family written with
  // deltas pending would disagree with the manifest's document roster
  // (ingested documents have no bytes anywhere). Refuse rather than
  // persist a fleet that cannot be reopened faithfully.
  for (const std::unique_ptr<MiningEngine>& shard : shards_) {
    if (shard->update_stats().pending_updates != 0) {
      return Status::FailedPrecondition(
          "fleet has pending deltas; call Rebuild() before SaveToFiles");
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Status status = shards_[s]->SaveToFile(ShardFilePath(prefix, s));
    if (!status.ok()) return status;
  }
  return SaveManifestLocked(prefix);
}

Result<ShardedEngine> ShardedEngine::LoadFromFiles(const std::string& prefix,
                                                   Options options) {
  auto fleet_file = IndexFile::Open(FleetManifestPath(prefix));
  if (!fleet_file.ok()) return fleet_file.status();
  if (!fleet_file.value().has_section(IndexSection::kManifest)) {
    return Status::Corruption("fleet manifest section missing");
  }
  BinaryReader reader(fleet_file.value().section(IndexSection::kManifest));

  uint32_t num_shards = 0;
  if (Status s = reader.GetU32(&num_shards); !s.ok()) return s;
  if (num_shards == 0 || num_shards > 65536) {
    return Status::Corruption("fleet manifest shard count out of range");
  }
  auto dict = PhraseDictionary::Deserialize(&reader);
  if (!dict.ok()) return dict.status();
  uint64_t num_docs = 0;
  if (Status s = reader.GetU64(&num_docs); !s.ok()) return s;
  if (num_docs > reader.Remaining()) {
    return Status::Corruption("fleet manifest document count exceeds payload");
  }

  // Same option-surface merging as Build, with the structural knobs
  // (shard count, phrase set, persist paths) pinned by the files.
  options.num_shards = num_shards;
  options.disk_backed = options.disk_backed || options.engine.disk_backed;
  if (options.disk_budget_per_shard == 0) {
    options.disk_budget_per_shard = options.engine.disk_resident_budget;
  }
  options.engine.disk_backed = options.disk_backed;
  options.engine.disk_resident_budget = options.disk_budget_per_shard;
  options.engine.persist_path.clear();
  options.persist_path = prefix;

  ShardedEngine sharded;
  sharded.options_ = std::move(options);
  sharded.global_set_ =
      std::make_shared<const PhraseDictionary>(std::move(dict.value()));
  const std::size_t n = num_shards;

  sharded.dead_.resize(num_docs);
  for (uint64_t g = 0; g < num_docs; ++g) {
    if (Status s = reader.GetU8(&sharded.dead_[g]); !s.ok()) return s;
    if (sharded.dead_[g]) ++sharded.num_dead_;
  }
  sharded.locate_.resize(num_docs);
  sharded.shard_globals_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    uint64_t count = 0;
    if (Status st = reader.GetU64(&count); !st.ok()) return st;
    if (count > reader.Remaining() / sizeof(DocId)) {
      return Status::Corruption("fleet manifest shard roster exceeds payload");
    }
    std::vector<DocId>& globals = sharded.shard_globals_[s];
    globals.resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (Status st = reader.GetU32(&globals[i]); !st.ok()) return st;
      if (globals[i] >= num_docs) {
        return Status::Corruption("fleet manifest document id out of range");
      }
      sharded.locate_[globals[i]] = {static_cast<uint32_t>(s),
                                     static_cast<DocId>(i)};
    }
  }

  ThreadPoolOptions pool_options;
  pool_options.num_threads =
      sharded.options_.mine_threads != 0 ? sharded.options_.mine_threads : n;
  pool_options.queue_capacity = std::max<std::size_t>(4 * n, 64);
  sharded.pool_ = std::make_unique<ThreadPool>(pool_options);

  sharded.shards_.resize(n);
  sharded.shard_avg_doc_phrases_.resize(n);
  std::vector<Status> shard_status(n);
  sharded.ParallelOverShards([&](std::size_t s) {
    MiningEngineOptions opts = sharded.options_.engine;
    opts.fixed_phrase_set = sharded.global_set_;
    opts.persist_path = ShardFilePath(prefix, s);
    auto loaded = MiningEngine::LoadFromFile(opts.persist_path, opts);
    if (!loaded.ok()) {
      shard_status[s] = loaded.status();
      return;
    }
    sharded.shards_[s] =
        std::make_unique<MiningEngine>(std::move(loaded.value()));
    sharded.shard_avg_doc_phrases_[s] = AvgDocPhrases(*sharded.shards_[s]);
  });
  for (const Status& st : shard_status) {
    if (!st.ok()) return st;
  }
  for (std::size_t s = 0; s < n; ++s) {
    // Cross-file consistency: a shard file from another fleet generation
    // would silently desynchronize the document routing or phrase ids.
    if (sharded.shards_[s]->corpus().size() !=
            sharded.shard_globals_[s].size() ||
        sharded.shards_[s]->dict().size() != sharded.global_set_->size()) {
      return Status::Corruption("shard file disagrees with fleet manifest");
    }
  }
  sharded.rebuild_recommended_.assign(n, 0);
  return sharded;
}

std::size_t ShardedEngine::ShardOf(DocId global) const {
  const std::size_t n = options_.num_shards;
  if (options_.partitioner) return options_.partitioner(global, n) % n;
  // SplitMix64 finalizer: hash partitioning keeps shard sizes balanced
  // regardless of any ordering structure in the incoming corpus.
  uint64_t z = static_cast<uint64_t>(global) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return (z ^ (z >> 31)) % n;
}

void ShardedEngine::ParallelOverShards(
    const std::function<void(std::size_t)>& fn) {
  const std::size_t n = shards_.size() != 0 ? shards_.size()
                                            : shard_globals_.size();
  if (n <= 1) {
    for (std::size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        [&fn, s] { fn(s); });
    futures.push_back(task->get_future());
    // TrySubmit so a saturated pool degrades to inline execution on the
    // caller's thread instead of risking submitter pile-ups under heavy
    // concurrent fan-out.
    if (!pool_->TrySubmit([task] { (*task)(); })) (*task)();
  }
  for (std::future<void>& f : futures) f.get();
}

Result<Query> ShardedEngine::ParseQuery(std::string_view text,
                                        QueryOperator op) const {
  std::shared_lock fleet_lock(*shards_mu_);
  return shards_[0]->ParseQuery(text, op);
}

std::string ShardedEngine::PhraseText(PhraseId id) const {
  std::shared_lock fleet_lock(*shards_mu_);
  return shards_[0]->PhraseText(id);
}

std::vector<PlannerInputs> ShardedEngine::GatherPlannerInputs(
    const Query& query, const MineOptions& options) const {
  std::shared_lock fleet_lock(*shards_mu_);
  std::vector<PlannerInputs> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    out.push_back(CostPlanner::GatherInputs(
        *shards_[s], query, options, shards_[s]->delta_snapshot(),
        shard_avg_doc_phrases_[s]));
  }
  return out;
}

ShardedMineResult ShardedEngine::Mine(const Query& query, Algorithm algorithm,
                                      const MineOptions& options) {
  PM_CHECK_MSG(options.delta == nullptr,
               "ShardedEngine applies per-shard overlays internally");
  StopWatch watch;
  std::shared_lock fleet_lock(*shards_mu_);
  const std::size_t n = shards_.size();
  const std::size_t r = query.terms.size();
  const MergeMode mode = ModeFor(algorithm);
  const std::size_t k_prime =
      options.k * options_.merge_headroom + options_.merge_slack;

  // Retried from fresh snapshots whenever a shard's structure generation
  // moved between rounds (a rebuild landed mid-mine): one merged result
  // never mixes pre- and post-rebuild supports. Plain ingests don't
  // trigger retries -- every round reads the snapshot's immutable
  // overlay, not the live one.
  for (;;) {
    std::vector<EpochDelta> snaps(n);
    for (std::size_t s = 0; s < n; ++s) {
      snaps[s] = shards_[s]->delta_snapshot();
    }

    // Per-attempt trace: built from scratch each round and attached to the
    // result only when the attempt survives to the gather, so a stale
    // retry never leaks a half-told story into the final tree.
    std::shared_ptr<TraceSpan> trace_root;
    if (options.trace) {
      trace_root = std::make_shared<TraceSpan>();
      trace_root->name = "mine:sharded";
      trace_root->detail = AlgorithmName(algorithm);
    }
    TraceSpan* trace = trace_root.get();
    const double attempt_start = trace != nullptr ? watch.ElapsedMillis() : 0.0;

    // --- Scatter -------------------------------------------------------------
    std::vector<ShardScatter> scatter(n);
    std::atomic<bool> stale{false};

    // Abort path shared by every cancellation/error exit of this attempt:
    // partial accounting from whatever legs ran, the composite epoch
    // vector from the snapshots (legs that never started contribute their
    // snapshot epoch and zero work), and the partial trace with the
    // "cancelled" markers the timing assertions read.
    auto aborted = [&](Status status) -> ShardedMineResult {
      ShardedMineResult out;
      out.result.status = std::move(status);
      out.result.shard_epochs.reserve(n);
      out.shard_disk_io.reserve(n);
      for (std::size_t s = 0; s < n; ++s) {
        out.result.shard_epochs.push_back(snaps[s].epoch);
        out.result.epoch += snaps[s].epoch;
        out.result.entries_read += scatter[s].entries_read;
        out.shard_disk_io.push_back(scatter[s].disk_io);
        out.result.disk_io += scatter[s].disk_io;
        out.result.disk_ms = std::max(out.result.disk_ms, scatter[s].disk_ms);
      }
      out.result.compute_ms = watch.ElapsedMillis();
      if (trace != nullptr) {
        trace->wall_ms = out.result.compute_ms;
        AddCounter(trace, "cancelled", 1.0);
        AddCounter(trace, "entries_at_cancel",
                   static_cast<double>(out.result.entries_read));
        out.result.trace = std::move(trace_root);
      }
      return out;
    };

    // Expired before any leg started (covers stale retries too): no work.
    if (CancelExpired(options.cancel)) {
      return aborted(
          Status::DeadlineExceeded("deadline expired before sharded scatter"));
    }
    // Shard children are created up front so the pool workers each own a
    // distinct, already-placed node -- no locking inside the lambda.
    TraceSpan* scatter_span = AddSpan(trace, "scatter");
    std::vector<TraceSpan*> scatter_shard_spans(n, nullptr);
    for (std::size_t s = 0; s < n && scatter_span != nullptr; ++s) {
      scatter_shard_spans[s] =
          AddSpan(scatter_span, "shard " + std::to_string(s));
    }
    ParallelOverShards([&](std::size_t s) {
      SpanTimer span_timer(scatter_shard_spans[s]);
      // A sibling leg that latched the shared token already aborted the
      // query; skip this leg's whole scatter (flag-only check -- the
      // sibling paid the clock read).
      if (CancelRequested(options.cancel)) return;
      if (failpoint::Enabled()) {
        // Slow-shard straggler site (latency-only; the dynamic name is
        // built only while some failpoint is armed).
        (void)failpoint::Evaluate(
            ("shard.scatter." + std::to_string(s)).c_str());
      }
      bool ok = true;
      switch (mode) {
        case MergeMode::kCountExhaustive:
          ok = CountScatter(*shards_[s], query, algorithm, snaps[s],
                            &scatter[s]);
          break;
        case MergeMode::kListExhaustive:
          ok = ListScatter(*shards_[s], query, algorithm, snaps[s],
                           &scatter[s]);
          break;
        case MergeMode::kCountTopK:
        case MergeMode::kListTopK:
          ok = TopKScatter(*shards_[s], query, algorithm, options, k_prime,
                           snaps[s], &scatter[s]);
          break;
      }
      if (!ok) stale.store(true, std::memory_order_relaxed);
    });
    if (stale.load(std::memory_order_relaxed)) {
      std::this_thread::yield();  // let the rebuild finish before retrying
      continue;
    }
    if (scatter_span != nullptr) {
      scatter_span->wall_ms = watch.ElapsedMillis() - attempt_start;
      for (std::size_t s = 0; s < n; ++s) {
        TraceSpan* ss = scatter_shard_spans[s];
        AddCounter(ss, "entries_read",
                   static_cast<double>(scatter[s].entries_read));
        AddCounter(ss, "candidates",
                   static_cast<double>(scatter[s].candidates.size()));
        if (scatter[s].disk_io.blocks_read > 0) {
          AddCounter(ss, "disk_blocks",
                     static_cast<double>(scatter[s].disk_io.blocks_read));
          AddCounter(ss, "disk_seeks",
                     static_cast<double>(scatter[s].disk_io.seeks));
          AddCounter(ss, "disk_bytes",
                     static_cast<double>(scatter[s].disk_io.bytes));
          AddCounter(ss, "disk_ms", scatter[s].disk_ms);
        }
      }
    }

    // A shard-local abort poisons the merge: its candidates are a partial
    // view. Prefer the shard's own status (a latched disk error is more
    // specific than the deadline that may also have fired by now).
    {
      Status abort_status;
      for (const ShardScatter& sh : scatter) {
        if (!sh.status.ok()) {
          abort_status = sh.status;
          break;
        }
      }
      if (abort_status.ok() && CancelExpired(options.cancel)) {
        abort_status = Status::DeadlineExceeded(
            "deadline expired during sharded scatter");
      }
      if (!abort_status.ok()) return aborted(std::move(abort_status));
    }

    // --- Union (join by global PhraseId) -------------------------------------
    // Ids index the frozen global set, so a dense slot table beats
    // hashing (candidate unions reach thousands of entries on OR
    // queries). Thread-local grow-only scratch: touched entries are
    // reset below, so between uses the table is all-kNoSlot and a query
    // pays no dictionary-sized allocation.
    const std::size_t set_size = global_set_->size();
    constexpr uint32_t kNoSlot = UINT32_MAX;
    thread_local std::vector<uint32_t> slot_of;
    if (slot_of.size() < set_size) slot_of.resize(set_size, kNoSlot);
    std::vector<GlobalCandidate> cands;
    for (const ShardScatter& shard : scatter) {
      for (const ShardCandidate& sc : shard.candidates) {
        // Ids beyond the set can only come from a stale pre-refresh mine;
        // drop them (the shard would re-report under the new set anyway).
        if (sc.phrase >= set_size) continue;
        if (slot_of[sc.phrase] == kNoSlot) {
          slot_of[sc.phrase] = static_cast<uint32_t>(cands.size());
          GlobalCandidate gc;
          gc.phrase = sc.phrase;
          gc.codf.assign(r, 0);
          cands.push_back(std::move(gc));
        }
      }
    }
    // Only the exhaustive merges need the reported matrix (it restricts
    // the fill to unreported shards); top-k' modes fill everything.
    std::vector<std::vector<uint8_t>> reported;
    if (!IsTopKMode(mode)) {
      reported.assign(n, std::vector<uint8_t>(cands.size(), 0));
      // Exhaustive scatter already carries each reporting shard's
      // supports.
      for (std::size_t s = 0; s < n; ++s) {
        for (const ShardCandidate& sc : scatter[s].candidates) {
          if (sc.phrase >= set_size) continue;
          const std::size_t slot = slot_of[sc.phrase];
          reported[s][slot] = 1;
          cands[slot].df += sc.df;
          cands[slot].freq_subset += sc.freq_subset;
          for (std::size_t j = 0; j < sc.codf.size(); ++j) {
            cands[slot].codf[j] += sc.codf[j];
          }
        }
      }
    }
    // Restore the scratch table's all-kNoSlot invariant (also on the
    // stale-retry paths below, which re-enter this block).
    for (const GlobalCandidate& gc : cands) slot_of[gc.phrase] = kNoSlot;

    // --- Totals --------------------------------------------------------------
    // |D| is always scatter-complete; |D'| is too on every path except
    // the count top-k' one, whose sub-collections are counted in the fill
    // round and added below.
    std::size_t total_docs = 0;
    std::size_t total_subcollection = 0;
    for (const ShardScatter& s : scatter) {
      total_docs += s.num_docs;
      if (!(IsTopKMode(mode) && IsCountMode(mode))) {
        total_subcollection += s.subcollection;
      }
    }

    // Global score of one candidate's summed supports -- the single
    // implementation both the final gather and the threshold round use,
    // so a "settled" candidate's threshold score is bitwise the score the
    // gather would compute. Returns false when the candidate can never
    // appear in a result (no subset occurrence / missing AND term /
    // non-positive OR score).
    std::vector<double> probs(r);
    auto evaluate = [&](const GlobalCandidate& gc, double* score,
                        double* interestingness) -> bool {
      if (IsCountMode(mode)) {
        if (gc.freq_subset == 0) return false;
        *score = EvaluateInterestingness(
            options.measure, static_cast<uint32_t>(gc.freq_subset),
            static_cast<uint32_t>(gc.df), total_subcollection, total_docs);
        *interestingness = *score;
        return true;
      }
      bool all_present = true;
      for (std::size_t j = 0; j < r; ++j) {
        if (gc.codf[j] == 0) all_present = false;
        // The monolithic list stores count / df in double; the same
        // division over the summed integers reproduces it bitwise.
        probs[j] = gc.df == 0 ? 0.0
                              : static_cast<double>(gc.codf[j]) /
                                    static_cast<double>(gc.df);
      }
      if (query.op == QueryOperator::kAnd) {
        if (!all_present) return false;
        *score = AndScore(probs);
        if (*score == kMinusInfinity) return false;
      } else {
        *score = OrScore(probs, options.or_order);
        if (*score <= 0.0) return false;
      }
      *interestingness = ScoreToInterestingness(*score, query.op);
      return true;
    };

    // --- Threshold exchange (exhaustive merges) ------------------------------
    // The exhaustive scatter already carries complete freq/codf sums for
    // every candidate; the fill round can only add df, and every
    // supported score is non-increasing in df, so a candidate's score
    // over the scatter sums is an upper bound on its final score. The
    // shards' exchanged supports also settle every candidate reported by
    // all of them (nothing left to fill), making those scores exact; the
    // k-th best settled score is a lower bound on the global k-th result
    // score. Candidates provably below it -- and candidates that can
    // never qualify at all (a missing AND term is already final) -- skip
    // the fill round entirely. The ranked output is bitwise unchanged.
    std::vector<uint8_t> pruned;
    uint64_t pruned_count = 0;
    std::size_t settled_count = 0;       // trace-only exchange accounting
    double exchange_floor = 0.0;
    bool have_exchange_floor = false;
    const double exchange_start = trace != nullptr ? watch.ElapsedMillis() : 0.0;
    const bool df_monotone =
        IsCountMode(mode) || query.op == QueryOperator::kAnd ||
        options.or_order != OrExpansionOrder::kSecondOrder;
    if (options_.threshold_exchange && !IsTopKMode(mode) && df_monotone &&
        options.k > 0 && cands.size() > options.k) {
      pruned.assign(cands.size(), 0);
      struct Settled {
        double score;
        PhraseId phrase;
      };
      std::vector<Settled> settled;
      std::vector<double> upper(cands.size(), 0.0);
      std::vector<uint8_t> alive(cands.size(), 0);
      for (std::size_t i = 0; i < cands.size(); ++i) {
        double score, interest;
        if (!evaluate(cands[i], &score, &interest)) continue;
        alive[i] = 1;
        upper[i] = score;
        bool fully_reported = true;
        for (std::size_t s = 0; s < n && fully_reported; ++s) {
          fully_reported = reported[s][i] != 0;
        }
        if (fully_reported) settled.push_back(Settled{score, cands[i].phrase});
      }
      bool have_floor = false;
      double floor_score = 0.0;
      if (settled.size() >= options.k) {
        std::nth_element(settled.begin(),
                         settled.begin() +
                             static_cast<std::ptrdiff_t>(options.k - 1),
                         settled.end(),
                         [](const Settled& a, const Settled& b) {
                           if (a.score != b.score) return a.score > b.score;
                           return a.phrase < b.phrase;
                         });
        floor_score = settled[options.k - 1].score;
        have_floor = true;
      }
      for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!alive[i] || (have_floor && upper[i] < floor_score)) {
          pruned[i] = 1;
          ++pruned_count;
        }
      }
      settled_count = settled.size();
      exchange_floor = floor_score;
      have_exchange_floor = have_floor;
    }
    if (trace != nullptr) {
      TraceSpan* exchange = AddSpan(trace, "exchange");
      exchange->wall_ms = watch.ElapsedMillis() - exchange_start;
      AddCounter(exchange, "candidates", static_cast<double>(cands.size()));
      AddCounter(exchange, "settled", static_cast<double>(settled_count));
      AddCounter(exchange, "pruned", static_cast<double>(pruned_count));
      if (have_exchange_floor) AddCounter(exchange, "floor", exchange_floor);
      if (!(options_.threshold_exchange && !IsTopKMode(mode) && df_monotone)) {
        SetDetail(exchange, "skipped (not applicable)");
      }
    }

    // --- Fill ----------------------------------------------------------------
    // Top-k' scatter discovered identities only: every shard computes
    // full supports for the whole union. Exhaustive scatter is complete
    // except for the df of phrases a shard holds but did not touch for
    // this query (freq or every codf zero there), which still belongs in
    // the global denominator -- unless the threshold exchange proved the
    // candidate out of contention above.
    std::vector<std::vector<PartialSupport>> fill(n);
    std::vector<std::size_t> fill_subcollection(n, 0);
    std::size_t fill_slots = 0;
    const double fill_start = trace != nullptr ? watch.ElapsedMillis() : 0.0;
    TraceSpan* fill_span = AddSpan(trace, "fill");
    if (!cands.empty()) {
      std::vector<TraceSpan*> fill_shard_spans(n, nullptr);
      for (std::size_t s = 0; s < n && fill_span != nullptr; ++s) {
        fill_shard_spans[s] = AddSpan(fill_span, "shard " + std::to_string(s));
      }
      ParallelOverShards([&](std::size_t s) {
        SpanTimer span_timer(fill_shard_spans[s]);
        if (CancelRequested(options.cancel)) {
          // Sibling aborted: contribute zero supports (the merge loop
          // below still indexes fill[s] before the abort check runs).
          fill[s].assign(cands.size(), PartialSupport{});
          return;
        }
        std::vector<uint8_t> need(cands.size());
        for (std::size_t i = 0; i < cands.size(); ++i) {
          need[i] = IsTopKMode(mode)
                        ? 1
                        : (!reported[s][i] &&
                           (pruned.empty() || !pruned[i]));
        }
        bool ok;
        if (IsCountMode(mode)) {
          ok = CountFill(*shards_[s], query, cands, need,
                         /*need_freq=*/IsTopKMode(mode), snaps[s],
                         &fill_subcollection[s], &fill[s]);
        } else {
          ok = ListFill(*shards_[s], query, cands, need,
                        /*need_codf=*/IsTopKMode(mode), snaps[s], &fill[s]);
        }
        if (!ok) stale.store(true, std::memory_order_relaxed);
      });
      if (stale.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t i = 0; i < cands.size(); ++i) {
          const PartialSupport& ps = fill[s][i];
          cands[i].df += ps.df;
          cands[i].freq_subset += ps.freq_subset;
          for (std::size_t j = 0; j < ps.codf.size(); ++j) {
            cands[i].codf[j] += ps.codf[j];
          }
        }
      }
      // Support lookups the fill actually performed (the exchange's
      // savings metric): every (shard, candidate) pair still needing
      // refinement after scatter reporting and threshold pruning.
      if (IsTopKMode(mode)) {
        fill_slots = cands.size() * n;
      } else {
        for (std::size_t i = 0; i < cands.size(); ++i) {
          if (!pruned.empty() && pruned[i]) continue;
          for (std::size_t s = 0; s < n; ++s) {
            fill_slots += reported[s][i] ? 0 : 1;
          }
        }
      }
    }
    if (fill_span != nullptr) {
      fill_span->wall_ms = watch.ElapsedMillis() - fill_start;
      AddCounter(fill_span, "fill_slots", static_cast<double>(fill_slots));
    }
    // Fill legs only skip on an already-latched token, so one more full
    // check bounds the gather: supports merged from a partially-cancelled
    // fill must never rank.
    if (CancelExpired(options.cancel)) {
      return aborted(
          Status::DeadlineExceeded("deadline expired during sharded fill"));
    }
    const double gather_start = trace != nullptr ? watch.ElapsedMillis() : 0.0;

    // --- Gather: global scores from summed supports --------------------------
    if (IsTopKMode(mode) && IsCountMode(mode)) {
      for (std::size_t s = 0; s < n; ++s) {
        total_subcollection += fill_subcollection[s];
      }
    }

    struct Ranked {
      std::size_t slot;
      double score;
      double interestingness;
    };
    std::vector<Ranked> ranked;
    ranked.reserve(cands.size());
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!pruned.empty() && pruned[i]) continue;
      double score;
      double interestingness;
      if (!evaluate(cands[i], &score, &interestingness)) continue;
      ranked.push_back(Ranked{i, score, interestingness});
    }
    // Ties order by smaller global PhraseId -- the monolithic collector's
    // tie-break, now meaningful fleet-wide thanks to the shared set.
    std::sort(ranked.begin(), ranked.end(),
              [&](const Ranked& a, const Ranked& b) {
                if (a.score != b.score) return a.score > b.score;
                return cands[a.slot].phrase < cands[b.slot].phrase;
              });
    if (ranked.size() > options.k) ranked.resize(options.k);
    if (trace != nullptr) {
      TraceSpan* gather = AddSpan(trace, "gather");
      gather->wall_ms = watch.ElapsedMillis() - gather_start;
      AddCounter(gather, "results", static_cast<double>(ranked.size()));
    }

    // --- Assemble ------------------------------------------------------------
    ShardedMineResult out;
    out.candidates = cands.size();
    out.fill_slots = fill_slots;
    out.result.candidates_pruned = pruned_count;
    out.exact_merge = !IsTopKMode(mode);
    out.result.phrases.reserve(ranked.size());
    out.texts.reserve(ranked.size());
    const double materialize_start =
        trace != nullptr ? watch.ElapsedMillis() : 0.0;
    shards_[0]->WithSharedStructures([&] {
      for (std::size_t i = 0; i < ranked.size(); ++i) {
        const PhraseId id = cands[ranked[i].slot].phrase;
        out.result.phrases.push_back(
            MinedPhrase{id, ranked[i].score, ranked[i].interestingness});
        out.texts.push_back(id < shards_[0]->phrase_file().num_phrases()
                                ? shards_[0]->phrase_file().Text(id)
                                : std::string("<unresolved phrase>"));
      }
    });
    if (trace != nullptr) {
      TraceSpan* materialize = AddSpan(trace, "materialize");
      materialize->wall_ms = watch.ElapsedMillis() - materialize_start;
      AddCounter(materialize, "texts", static_cast<double>(out.texts.size()));
    }
    out.result.peak_candidates = cands.size();
    out.result.subcollection_size =
        IsCountMode(mode) ? total_subcollection : 0;
    out.result.shard_epochs.reserve(n);
    out.shard_disk_io.reserve(n);
    for (const ShardScatter& s : scatter) {
      out.result.shard_epochs.push_back(s.epoch);
      out.result.epoch += s.epoch;
      out.result.entries_read += s.entries_read;
      // Each shard charged its own device: the aggregate counters sum
      // (total device work) while the modeled latency is the slowest
      // device's charge -- the disks run in parallel.
      out.shard_disk_io.push_back(s.disk_io);
      out.result.disk_io += s.disk_io;
      out.result.disk_ms = std::max(out.result.disk_ms, s.disk_ms);
      if (GuaranteeRank(s.guarantee) > GuaranteeRank(out.result.guarantee)) {
        out.result.guarantee = s.guarantee;
      }
      out.candidate_floor = std::max(out.candidate_floor, s.local_floor);
    }
    out.result.compute_ms = watch.ElapsedMillis();
    if (trace != nullptr) {
      trace->wall_ms = out.result.compute_ms;
      AddCounter(trace, "shards", static_cast<double>(n));
      AddCounter(trace, "candidates", static_cast<double>(cands.size()));
      AddCounter(trace, "candidates_pruned",
                 static_cast<double>(pruned_count));
      out.result.trace = std::move(trace_root);
    }
    return out;
  }
}

ShardedUpdateStats ShardedEngine::ApplyUpdate(const UpdateBatch& batch) {
  std::scoped_lock lock(*update_mu_);
  const std::size_t n = shards_.size();

  // Broadcast every ingested term to every shard first: identical intern
  // order from identical vocabularies keeps term ids global, so queries
  // parsed against any shard stay portable (see MiningEngine::InternTerms).
  // One InternTerms call per shard for the whole batch -- per-document
  // round-trips would take each shard's vocab lock O(inserts) times.
  if (!batch.inserts.empty()) {
    std::vector<std::string> batch_terms;
    for (const UpdateDoc& doc : batch.inserts) {
      batch_terms.insert(batch_terms.end(), doc.tokens.begin(),
                         doc.tokens.end());
      batch_terms.insert(batch_terms.end(), doc.facets.begin(),
                         doc.facets.end());
    }
    for (const std::unique_ptr<MiningEngine>& shard : shards_) {
      shard->InternTerms(batch_terms);
    }
  }

  // Route inserts to their owning shard and translate global delete ids
  // to shard-local ones.
  std::vector<UpdateBatch> per_shard(n);
  for (const UpdateDoc& doc : batch.inserts) {
    const auto g = static_cast<DocId>(locate_.size());
    const auto s = static_cast<uint32_t>(ShardOf(g));
    locate_.push_back({s, static_cast<DocId>(shard_globals_[s].size())});
    shard_globals_[s].push_back(g);
    dead_.push_back(0);
    per_shard[s].inserts.push_back(doc);
  }
  for (DocId g : batch.deletes) {
    if (g >= locate_.size() || dead_[g]) continue;
    dead_[g] = 1;
    ++num_dead_;
    per_shard[locate_[g].shard].deletes.push_back(locate_[g].local);
  }

  ShardedUpdateStats out;
  out.epochs.resize(n);
  out.rebuild_recommended.resize(n);
  const bool want_event = update_listener_ != nullptr;
  ShardedUpdateEvent ev;
  if (want_event) ev.shards.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    if (!per_shard[s].inserts.empty() || !per_shard[s].deletes.empty()) {
      UpdateEvent shard_ev;
      const UpdateStats stats = shards_[s]->ApplyUpdate(
          per_shard[s], want_event ? &shard_ev : nullptr);
      out.total.batch_inserts += stats.batch_inserts;
      out.total.batch_deletes += stats.batch_deletes;
      rebuild_recommended_[s] = stats.rebuild_recommended ? 1 : 0;
      if (want_event) {
        ev.shards[s] = {shard_ev.epoch, shard_ev.generation,
                        shard_ev.structure_version, std::move(shard_ev.delta)};
        // PhraseIds are global across shards, so the per-shard touched
        // sets union directly into the fleet-level set.
        ev.touched.insert(ev.touched.end(), shard_ev.touched.begin(),
                          shard_ev.touched.end());
      }
    } else if (want_event) {
      const EpochDelta snap = shards_[s]->delta_snapshot();
      ev.shards[s] = {snap.epoch, snap.generation,
                      shards_[s]->structure_version(), snap.delta};
    }
    out.epochs[s] = shards_[s]->epoch();
    out.total.epoch += out.epochs[s];
    out.total.pending_updates += shards_[s]->update_stats().pending_updates;
    out.rebuild_recommended[s] = rebuild_recommended_[s];
  }
  out.total.live_docs = locate_.size() - num_dead_;
  out.total.delta_fraction =
      out.total.live_docs == 0
          ? (out.total.pending_updates > 0 ? 1.0 : 0.0)
          : static_cast<double>(out.total.pending_updates) /
                static_cast<double>(out.total.live_docs);
  for (uint8_t flag : rebuild_recommended_) {
    if (flag) out.total.rebuild_recommended = true;
  }
  if (want_event) {
    std::sort(ev.touched.begin(), ev.touched.end());
    ev.touched.erase(std::unique(ev.touched.begin(), ev.touched.end()),
                     ev.touched.end());
    ev.epoch = out.total.epoch;
    update_listener_(ev);
  }
  return out;
}

void ShardedEngine::SetUpdateListener(ShardedUpdateListener listener) {
  std::scoped_lock lock(*update_mu_);
  update_listener_ = std::move(listener);
}

void ShardedEngine::NotifyRebuiltLocked() {
  if (update_listener_ == nullptr) return;
  ShardedUpdateEvent ev;
  ev.rebuilt = true;
  std::shared_lock fleet_lock(*shards_mu_);
  ev.shards.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const EpochDelta snap = shards_[s]->delta_snapshot();
    ev.shards[s] = {snap.epoch, snap.generation,
                    shards_[s]->structure_version(), snap.delta};
    ev.epoch += snap.epoch;
  }
  update_listener_(ev);
}

void ShardedEngine::Rebuild() {
  // One shard at a time, releasing the update mutex between shards:
  // ingest interleaves and queries only ever lose one shard's freshness.
  for (std::size_t s = 0; s < shards_.size(); ++s) RebuildShard(s);
}

void ShardedEngine::RebuildShard(std::size_t shard) {
  std::scoped_lock lock(*update_mu_);
  RebuildShardLocked(shard);
  NotifyRebuiltLocked();
}

void ShardedEngine::RebuildShardLocked(std::size_t shard) {
  shards_[shard]->Rebuild();
  shard_avg_doc_phrases_[shard] = AvgDocPhrases(*shards_[shard]);
  rebuild_recommended_[shard] = 0;
  // The shard compacted its numbering to the live documents in order;
  // mirror that in the global->local mapping.
  std::vector<DocId>& globals = shard_globals_[shard];
  std::vector<DocId> live;
  live.reserve(globals.size());
  for (DocId g : globals) {
    if (dead_[g]) continue;
    locate_[g].local = static_cast<DocId>(live.size());
    live.push_back(g);
  }
  globals = std::move(live);
  if (!options_.persist_path.empty()) {
    // The shard engine re-persisted its own file inside Rebuild; the
    // compaction above changed the roster, so refresh the manifest too.
    persist_status_ = shards_[shard]->persist_status();
    if (persist_status_.ok()) {
      persist_status_ = SaveManifestLocked(options_.persist_path);
    }
  }
}

void ShardedEngine::RefreshDictionary() {
  // Ingest stalls for the whole refresh; queries keep running against the
  // old fleet until the final swap.
  std::scoped_lock update_lock(*update_mu_);
  const std::size_t n = shards_.size();

  // 1. Absorb every shard's pending updates into its base structures so
  //    the base corpus below IS the live document set.
  for (std::size_t s = 0; s < n; ++s) RebuildShardLocked(s);

  // 2. Snapshot every shard's live corpus (one locked clone each, reused
  //    for both the extraction union and the offline rebuild) and
  //    re-extract the global phrase set over the union.
  std::vector<Corpus> parts(n);
  for (std::size_t s = 0; s < n; ++s) {
    parts[s] = shards_[s]->CloneBaseCorpus();
  }
  Corpus all;
  all.vocab() = parts[0].vocab();
  for (const Corpus& part : parts) {
    for (DocId d = 0; d < part.size(); ++d) all.AddDocument(part.doc(d));
  }
  PhraseExtractor extractor(options_.engine.extractor);
  auto fresh_set =
      std::make_shared<const PhraseDictionary>(extractor.Extract(all));

  // 3. Rebuild every shard against the new set, offline. Epochs continue
  //    monotonically past the predecessors' so epoch-keyed result caches
  //    can never resurrect a pre-refresh entry.
  MiningEngineOptions shard_options = options_.engine;
  shard_options.fixed_phrase_set = fresh_set;
  std::vector<std::unique_ptr<MiningEngine>> fresh(n);
  std::vector<double> fresh_avg(n, 0.0);
  ParallelOverShards([&](std::size_t s) {
    MiningEngineOptions opts = shard_options;
    if (!options_.persist_path.empty()) {
      opts.persist_path = ShardFilePath(options_.persist_path, s);
    }
    fresh[s] = std::make_unique<MiningEngine>(
        MiningEngine::Build(std::move(parts[s]), opts));
    fresh[s]->AdvanceEpoch(shards_[s]->epoch() + 1);
    fresh_avg[s] = AvgDocPhrases(*fresh[s]);
  });

  // 4. Swap the fleet atomically; in-flight mines finish on the old one.
  {
    std::unique_lock fleet_lock(*shards_mu_);
    shards_ = std::move(fresh);
    shard_avg_doc_phrases_ = std::move(fresh_avg);
    global_set_ = std::move(fresh_set);
  }
  std::fill(rebuild_recommended_.begin(), rebuild_recommended_.end(), 0);
  if (!options_.persist_path.empty()) {
    // Shard files were rewritten by the offline builds (new dictionary,
    // new ids); stamp a manifest that matches the swapped fleet.
    persist_status_ = Status::OK();
    for (std::size_t s = 0; s < n && persist_status_.ok(); ++s) {
      persist_status_ = shards_[s]->persist_status();
    }
    if (persist_status_.ok()) {
      persist_status_ = SaveManifestLocked(options_.persist_path);
    }
  }
  NotifyRebuiltLocked();
}

void ShardedEngine::SetDiskBudgetPerShard(uint64_t budget_bytes) {
  options_.disk_budget_per_shard = budget_bytes;
  options_.engine.disk_resident_budget = budget_bytes;
  for (const std::unique_ptr<MiningEngine>& shard : shards_) {
    shard->SetDiskResidentBudget(budget_bytes);
  }
}

void ShardedEngine::SetTermPopularity(
    std::shared_ptr<const TermPopularity> observed) {
  // Term ids are global across the fleet (identical vocabularies by
  // construction), so every shard re-places from the same snapshot; each
  // shard pins the observed-hot prefix of *its own* built lists under its
  // own budget. Fleet lock shared: the per-shard install synchronizes on
  // the shard's structure lock, and only RefreshDictionary (exclusive)
  // may swap the fleet.
  std::shared_lock fleet_lock(*shards_mu_);
  for (const std::unique_ptr<MiningEngine>& shard : shards_) {
    shard->SetTermPopularity(observed);
  }
}

std::vector<uint64_t> ShardedEngine::epochs() const {
  std::shared_lock fleet_lock(*shards_mu_);
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<MiningEngine>& shard : shards_) {
    out.push_back(shard->epoch());
  }
  return out;
}

uint64_t ShardedEngine::epoch() const {
  std::shared_lock fleet_lock(*shards_mu_);
  uint64_t total = 0;
  for (const std::unique_ptr<MiningEngine>& shard : shards_) {
    total += shard->epoch();
  }
  return total;
}

UpdateStats ShardedEngine::update_stats() const {
  std::scoped_lock lock(*update_mu_);
  std::shared_lock fleet_lock(*shards_mu_);
  UpdateStats out;
  for (const std::unique_ptr<MiningEngine>& shard : shards_) {
    const UpdateStats stats = shard->update_stats();
    out.pending_updates += stats.pending_updates;
    out.epoch += shard->epoch();
    if (stats.rebuild_recommended) out.rebuild_recommended = true;
  }
  out.live_docs = locate_.size() - num_dead_;
  out.delta_fraction =
      out.live_docs == 0
          ? (out.pending_updates > 0 ? 1.0 : 0.0)
          : static_cast<double>(out.pending_updates) /
                static_cast<double>(out.live_docs);
  return out;
}

std::size_t ShardedEngine::num_docs() const {
  std::scoped_lock lock(*update_mu_);
  return locate_.size();
}

}  // namespace phrasemine
