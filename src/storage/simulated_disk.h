#ifndef PHRASEMINE_STORAGE_SIMULATED_DISK_H_
#define PHRASEMINE_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "storage/disk_backend.h"

namespace phrasemine {

/// Cost model of the disk simulation used in Section 5.5 of the paper
/// (following Deshpande et al. [4]): 32 KiB pages, a 16-page LRU cache with
/// one-page lookahead on each page access, 1 ms charged per sequential page
/// fetch and 10 ms per random page fetch.
struct DiskOptions {
  std::size_t page_size_bytes = 32 * 1024;
  std::size_t cache_pages = 16;
  double sequential_ms = 1.0;
  double random_ms = 10.0;
  bool lookahead = true;
};

/// Simulates disk-resident index files. Callers register files (sized in
/// bytes), then issue byte-range reads; the simulator translates ranges to
/// page accesses, runs them through the LRU cache + lookahead, and charges
/// sequential/random fetch costs. Computation time is *not* included here:
/// the harness adds charged I/O time to the measured in-memory compute time,
/// exactly the simulation protocol of the paper. This is the model-only
/// DiskBackend; MappedDisk (storage/index_file.h) is the measured one.
class SimulatedDisk final : public DiskBackend {
 public:
  explicit SimulatedDisk(DiskOptions options = {});

  /// Registers a file of `size_bytes`; returns its file id. At most 2^24
  /// files may be registered (the PageKey width budget below).
  uint32_t RegisterFile(uint64_t size_bytes);

  /// DiskBackend range registration; the offset is meaningless for a
  /// modeled device and ignored.
  uint32_t RegisterRange(uint64_t /*offset*/, uint64_t size_bytes) override {
    return RegisterFile(size_bytes);
  }

  /// Reads [offset, offset + n) from `file`, touching each covered page.
  void Read(uint32_t file, uint64_t offset, uint64_t n) override;

  /// Touches a single page (used by list cursors that track entry->page
  /// mapping themselves).
  void AccessPage(uint32_t file, uint64_t page);

  const DiskStats& stats() const override { return stats_; }

  bool measured() const override { return false; }

  /// Clears counters but keeps cache contents (use between measurement
  /// phases of one run).
  void ResetStats() { stats_ = DiskStats{}; }

  /// Clears counters *and* cache (use between independent runs, i.e. a cold
  /// cache).
  void Reset() override;

  const DiskOptions& options() const { return options_; }

  /// Number of pages a file of `size_bytes` occupies under this page size.
  uint64_t PagesForBytes(uint64_t size_bytes) const;

 private:
  // PageKey packs (file, page) into one cache key: file in the top 24
  // bits, page in the bottom 40. RegisterFile and PageKey enforce those
  // widths -- an overflowing file id or page number would silently alias
  // cache entries across files otherwise.
  static constexpr uint32_t kMaxFiles = 1u << 24;
  static constexpr uint64_t kMaxPages = 1ull << 40;

  /// Globally unique page key: file id in the high bits, page number below.
  static uint64_t PageKey(uint32_t file, uint64_t page) {
    PM_CHECK_MSG(file < kMaxFiles, "file id exceeds PageKey width");
    PM_CHECK_MSG(page < kMaxPages, "page number exceeds PageKey width");
    return (static_cast<uint64_t>(file) << 40) | page;
  }

  /// Loads a page into the cache, charging its fetch cost.
  void Fetch(uint32_t file, uint64_t page);

  bool InCache(uint64_t key) const { return cache_index_.contains(key); }
  void TouchLru(uint64_t key);
  void InsertLru(uint64_t key);

  DiskOptions options_;
  std::vector<uint64_t> file_pages_;  // pages per registered file
  // LRU: most-recent at front.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> cache_index_;
  // Physical head position: last fetched (file, page) for the
  // sequential-vs-random decision.
  bool has_last_fetch_ = false;
  uint32_t last_file_ = 0;
  uint64_t last_page_ = 0;
  DiskStats stats_;
};

/// Sequential reader over a disk-resident list of fixed-size entries.
/// Advancing the cursor touches the page holding the next entry, so cache
/// hits/misses and their costs accrue on the owning SimulatedDisk.
class DiskListCursor {
 public:
  /// `entry_bytes` is the on-disk entry footprint (12 for word lists).
  DiskListCursor(SimulatedDisk* disk, uint32_t file, uint64_t base_offset,
                 uint64_t num_entries, std::size_t entry_bytes);

  /// True if entries remain.
  bool HasNext() const { return next_ < num_entries_; }

  /// Index of the next entry to be read.
  uint64_t position() const { return next_; }
  uint64_t num_entries() const { return num_entries_; }

  /// Registers the I/O for reading the next entry and advances.
  void Advance();

 private:
  SimulatedDisk* disk_;
  uint32_t file_;
  uint64_t base_offset_;
  uint64_t num_entries_;
  std::size_t entry_bytes_;
  uint64_t next_ = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_STORAGE_SIMULATED_DISK_H_
