#ifndef PHRASEMINE_STORAGE_DISK_BACKEND_H_
#define PHRASEMINE_STORAGE_DISK_BACKEND_H_

#include <cstdint>

namespace phrasemine {

/// Aggregate I/O statistics for one run against a disk backend. For the
/// modeled backend (SimulatedDisk) fetches and cost_ms are charges from
/// the Section 5.5 cost model; for the measured backend (MappedDisk)
/// fetches are first touches of real mapped blocks and cost_ms is the
/// wall time spent touching them.
struct DiskStats {
  uint64_t page_requests = 0;    ///< Logical page touches.
  uint64_t cache_hits = 0;       ///< Served from cache / already-touched.
  uint64_t sequential_fetches = 0;
  uint64_t random_fetches = 0;
  /// Logical bytes requested through Read() (AccessPage touches whole
  /// pages and is not counted here).
  uint64_t bytes_read = 0;
  double cost_ms = 0.0;          ///< Charged (modeled) or measured I/O time.

  /// Device blocks actually fetched (cache misses, prefetches included).
  uint64_t BlocksRead() const { return sequential_fetches + random_fetches; }
  /// Fetches that paid the random (seek) rate.
  uint64_t Seeks() const { return random_fetches; }
};

/// The charging seam between DiskResidentLists and its device: the tier
/// registers one byte range per spilled structure, then the miners issue
/// byte-range reads against it as they touch entries. Two backends
/// implement it:
///   * SimulatedDisk -- the paper's Section 5.5 cost model; ranges are
///     synthetic files, reads charge modeled milliseconds.
///   * MappedDisk (storage/index_file.h) -- ranges address a real mmapped
///     index file; reads touch the mapped bytes and stats() reports
///     measured blocks/bytes/time instead of modeled charges.
class DiskBackend {
 public:
  /// Range offset meaning "no backing bytes": the registered range is
  /// accounted arithmetically (block math over its size) but never
  /// dereferenced. SimulatedDisk treats every range this way; MappedDisk
  /// uses it for structures built after load, which have no bytes in the
  /// mapped file.
  static constexpr uint64_t kNoOffset = ~0ull;

  virtual ~DiskBackend() = default;

  /// Registers a readable range of `size_bytes` at `offset` within the
  /// backend's address space (kNoOffset for unbacked ranges); returns the
  /// range id Read() addresses.
  virtual uint32_t RegisterRange(uint64_t offset, uint64_t size_bytes) = 0;

  /// Reads [offset, offset + n) of range `file`, accruing stats (and, for
  /// a modeled backend, cost).
  virtual void Read(uint32_t file, uint64_t offset, uint64_t n) = 0;

  /// Clears counters *and* cache/touch state: the next reads start cold.
  virtual void Reset() = 0;

  virtual const DiskStats& stats() const = 0;

  /// True when stats() reports measured I/O against real bytes; false
  /// when they are modeled charges.
  virtual bool measured() const = 0;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_STORAGE_DISK_BACKEND_H_
