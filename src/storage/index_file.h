#ifndef PHRASEMINE_STORAGE_INDEX_FILE_H_
#define PHRASEMINE_STORAGE_INDEX_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/disk_backend.h"

namespace phrasemine {

/// Section (page-run) types of the phrasemine index file. Values are part
/// of the on-disk format: never renumber, only append. A reader skips
/// section types it does not know, so new sections are backward-compatible
/// within one format version.
enum class IndexSection : uint32_t {
  kVocabulary = 1,
  kCorpusDocs = 2,
  kPhraseDictionary = 3,
  kInvertedIndex = 4,
  kForwardIndexFull = 5,
  kForwardIndexCompressed = 6,
  kPhraseListFile = 7,
  kWordScoreLists = 8,
  /// Free-form payload for the owner (ShardedEngine persists its global
  /// dictionary + document-location tables here).
  kManifest = 9,
};

/// On-disk constants of the index file format, version 1.
///
///   superblock   page 0: header + section table + header checksum
///   sections     each section's payload starts on a page boundary and
///                runs over ceil(payload/page) typed pages
///
/// Header (32 bytes, little-endian -- enforced by io_util.h):
///   u32 magic        "PMIX" = 0x58494D50
///   u32 version      1
///   u8  endian       1 = little (stamped so a foreign-endian file fails
///                    with Corruption instead of decoding garbage)
///   u8[3] reserved   0
///   u32 page_bytes   4096
///   u32 num_sections
///   u32 reserved2    0
///   u64 file_bytes   total file size (truncation check)
/// Section table (32 bytes per section, immediately after the header):
///   u32 type         IndexSection value
///   u32 reserved     0
///   u64 offset       payload file offset (page-aligned)
///   u64 payload_bytes
///   u64 checksum     FNV-1a 64 over the payload bytes
/// Then u64 header_checksum: FNV-1a 64 over header + section table.
///
/// Versioning rules: bump kIndexFileVersion on any incompatible layout
/// change (readers reject other versions with Corruption); adding section
/// types is compatible and does not bump the version.
inline constexpr uint32_t kIndexFileMagic = 0x58494D50;  // "PMIX"
inline constexpr uint32_t kIndexFileVersion = 1;
inline constexpr uint32_t kIndexPageBytes = 4096;
inline constexpr uint8_t kIndexEndianLittle = 1;
inline constexpr uint32_t kIndexMaxSections = 1024;

/// FNV-1a 64-bit hash, the file's checksum function (no external deps).
uint64_t Fnv1a64(const uint8_t* data, std::size_t n);

/// One-shot builder: collect serialized structures as typed sections, then
/// write the whole file (superblock, table, page-aligned payloads) at once.
class IndexFileWriter {
 public:
  /// Appends one section. Order is preserved; one type may appear at most
  /// once per file.
  void AddSection(IndexSection type, std::vector<uint8_t> payload);

  /// Writes the complete index file to `path` (atomically via a .tmp
  /// sibling + rename, so a crashed writer never leaves a half-written
  /// file under the final name).
  Status WriteTo(const std::string& path) const;

  std::size_t num_sections() const { return sections_.size(); }

 private:
  struct Pending {
    IndexSection type;
    std::vector<uint8_t> payload;
  };
  std::vector<Pending> sections_;
};

/// A validated, read-only view of one index file: the superblock is parsed
/// and every checksum verified at Open, then sections are handed out as
/// borrowed byte spans for zero-copy decoding (BinaryReader's span ctor).
/// On POSIX the file is mmapped (spans point into the mapping); elsewhere
/// it is read into memory. Move-only; the mapping lives as long as the
/// object, so spans and borrowing readers must not outlive it.
class IndexFile {
 public:
  /// Opens and fully validates `path`: magic, version, endian stamp, size,
  /// header checksum, section bounds/alignment, then every section payload
  /// checksum. Malformed input fails with Corruption, unreadable files
  /// with IOError. The wall time spent (the measured cold-open cost, which
  /// touches every payload byte once via the checksums) is in open_ms().
  static Result<IndexFile> Open(const std::string& path);

  IndexFile(IndexFile&& other) noexcept { *this = std::move(other); }
  IndexFile& operator=(IndexFile&& other) noexcept;
  IndexFile(const IndexFile&) = delete;
  IndexFile& operator=(const IndexFile&) = delete;
  ~IndexFile();

  bool has_section(IndexSection type) const;

  /// Payload bytes of a section; empty span when absent.
  std::span<const uint8_t> section(IndexSection type) const;

  /// File offset of a section's payload, or DiskBackend::kNoOffset when
  /// absent. MappedDisk ranges use these offsets as their addresses.
  uint64_t section_offset(IndexSection type) const;

  uint64_t file_bytes() const { return size_; }
  /// Wall-clock milliseconds Open spent mapping + validating.
  double open_ms() const { return open_ms_; }
  const std::string& path() const { return path_; }

  /// Base of the mapped (or loaded) file bytes.
  const uint8_t* data() const { return data_; }

 private:
  IndexFile() = default;
  void Release();

  struct Section {
    IndexSection type;
    uint64_t offset = 0;
    uint64_t size = 0;
  };
  const Section* Find(IndexSection type) const;

  std::string path_;
  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool mapped_ = false;               // true: munmap on destruction
  std::vector<uint8_t> fallback_;     // owns bytes when not mapped
  std::vector<Section> sections_;
  double open_ms_ = 0.0;
};

/// Measured disk backend over an opened IndexFile: where SimulatedDisk
/// charges the Section 5.5 cost model, MappedDisk actually touches the
/// mapped bytes and reports what happened -- blocks are first touches of
/// kIndexPageBytes-sized blocks of the mapping, sequential/random is
/// decided by block adjacency (same head-position rule as the simulator),
/// and cost_ms is the wall time spent touching. Ranges registered at
/// kNoOffset (structures built after load, with no bytes in the file) are
/// accounted arithmetically over a synthetic address space past the end
/// of the file and never dereferenced.
///
/// Reset() clears the touch state so the next reads count cold again; on
/// POSIX it also madvise(MADV_DONTNEED)s the mapping so the kernel drops
/// the resident pages and the touches re-fault.
class MappedDisk final : public DiskBackend {
 public:
  /// `file` must outlive this backend; may be null (pure arithmetic mode,
  /// every range behaves as unbacked).
  explicit MappedDisk(const IndexFile* file);

  uint32_t RegisterRange(uint64_t offset, uint64_t size_bytes) override;
  void Read(uint32_t file, uint64_t offset, uint64_t n) override;
  void Reset() override;
  const DiskStats& stats() const override { return stats_; }
  bool measured() const override { return true; }

 private:
  struct Range {
    uint64_t base = 0;       // absolute byte offset (real or synthetic)
    uint64_t size = 0;
    bool backed = false;     // true: base addresses real mapped bytes
    std::vector<uint64_t> touched;  // first-touch bitmap, one bit per block
  };

  const IndexFile* file_;
  std::vector<Range> ranges_;
  uint64_t synthetic_next_ = 0;  // next synthetic base for unbacked ranges
  bool has_last_block_ = false;
  uint64_t last_block_ = 0;
  DiskStats stats_;
};

}  // namespace phrasemine

#endif  // PHRASEMINE_STORAGE_INDEX_FILE_H_
