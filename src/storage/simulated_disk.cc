#include "storage/simulated_disk.h"

#include "common/check.h"
#include "testing/failpoint.h"

namespace phrasemine {

SimulatedDisk::SimulatedDisk(DiskOptions options) : options_(options) {
  PM_CHECK(options_.page_size_bytes > 0);
  PM_CHECK(options_.cache_pages > 0);
}

uint32_t SimulatedDisk::RegisterFile(uint64_t size_bytes) {
  PM_CHECK_MSG(file_pages_.size() < kMaxFiles,
               "too many registered files for PageKey width");
  const uint32_t id = static_cast<uint32_t>(file_pages_.size());
  file_pages_.push_back(PagesForBytes(size_bytes));
  return id;
}

uint64_t SimulatedDisk::PagesForBytes(uint64_t size_bytes) const {
  return (size_bytes + options_.page_size_bytes - 1) / options_.page_size_bytes;
}

void SimulatedDisk::Read(uint32_t file, uint64_t offset, uint64_t n) {
  if (n == 0) return;
  // Latency-injection site (a stalling device); injected errors are
  // surfaced by the tier-level "disk.read" site, not here -- the cost
  // model has no error channel.
  if (failpoint::Enabled()) (void)PM_FAILPOINT("disk.sim.read");
  stats_.bytes_read += n;
  const uint64_t first = offset / options_.page_size_bytes;
  const uint64_t last = (offset + n - 1) / options_.page_size_bytes;
  for (uint64_t page = first; page <= last; ++page) {
    AccessPage(file, page);
  }
}

void SimulatedDisk::AccessPage(uint32_t file, uint64_t page) {
  PM_CHECK(file < file_pages_.size());
  PM_CHECK_MSG(page < file_pages_[file], "page beyond end of file");
  ++stats_.page_requests;
  const uint64_t key = PageKey(file, page);
  if (InCache(key)) {
    ++stats_.cache_hits;
    TouchLru(key);
  } else {
    Fetch(file, page);
  }
  // One-page lookahead on every page access (the Section 5.5 cache). The
  // prefetch pays whatever the head position dictates: after a miss the
  // head sits on `page`, so the prefetch is sequential; after a cache hit
  // the head has not moved, so a prefetch that does not trail it pays the
  // random rate like any other out-of-order fetch.
  if (options_.lookahead && page + 1 < file_pages_[file]) {
    const uint64_t next_key = PageKey(file, page + 1);
    if (!InCache(next_key)) {
      Fetch(file, page + 1);
    }
  }
}

void SimulatedDisk::Fetch(uint32_t file, uint64_t page) {
  const bool sequential =
      has_last_fetch_ && file == last_file_ && page == last_page_ + 1;
  if (sequential) {
    ++stats_.sequential_fetches;
    stats_.cost_ms += options_.sequential_ms;
  } else {
    ++stats_.random_fetches;
    stats_.cost_ms += options_.random_ms;
  }
  has_last_fetch_ = true;
  last_file_ = file;
  last_page_ = page;
  InsertLru(PageKey(file, page));
}

void SimulatedDisk::TouchLru(uint64_t key) {
  auto it = cache_index_.find(key);
  PM_CHECK(it != cache_index_.end());
  lru_.erase(it->second);
  lru_.push_front(key);
  it->second = lru_.begin();
}

void SimulatedDisk::InsertLru(uint64_t key) {
  if (cache_index_.contains(key)) {
    TouchLru(key);
    return;
  }
  lru_.push_front(key);
  cache_index_.emplace(key, lru_.begin());
  while (lru_.size() > options_.cache_pages) {
    cache_index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void SimulatedDisk::Reset() {
  stats_ = DiskStats{};
  lru_.clear();
  cache_index_.clear();
  has_last_fetch_ = false;
}

DiskListCursor::DiskListCursor(SimulatedDisk* disk, uint32_t file,
                               uint64_t base_offset, uint64_t num_entries,
                               std::size_t entry_bytes)
    : disk_(disk),
      file_(file),
      base_offset_(base_offset),
      num_entries_(num_entries),
      entry_bytes_(entry_bytes) {
  PM_CHECK(disk_ != nullptr);
  PM_CHECK(entry_bytes_ > 0);
}

void DiskListCursor::Advance() {
  PM_CHECK(HasNext());
  disk_->Read(file_, base_offset_ + next_ * entry_bytes_, entry_bytes_);
  ++next_;
}

}  // namespace phrasemine
