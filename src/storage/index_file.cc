#include "storage/index_file.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/io_util.h"
#include "testing/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define PHRASEMINE_HAVE_MMAP 1
#endif

namespace phrasemine {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Fixed superblock geometry (see the header comment in index_file.h).
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kTableEntryBytes = 32;
constexpr std::size_t kChecksumBytes = 8;

uint64_t PageAlign(uint64_t offset) {
  const uint64_t page = kIndexPageBytes;
  return (offset + page - 1) / page * page;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

uint64_t Fnv1a64(const uint8_t* data, std::size_t n) {
  uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

// --- IndexFileWriter ---------------------------------------------------------

void IndexFileWriter::AddSection(IndexSection type,
                                 std::vector<uint8_t> payload) {
  for (const Pending& p : sections_) {
    PM_CHECK_MSG(p.type != type, "duplicate index file section type");
  }
  PM_CHECK_MSG(sections_.size() < kIndexMaxSections,
               "too many index file sections");
  sections_.push_back(Pending{type, std::move(payload)});
}

Status IndexFileWriter::WriteTo(const std::string& path) const {
  const std::size_t n = sections_.size();
  const uint64_t super_bytes =
      kHeaderBytes + n * kTableEntryBytes + kChecksumBytes;

  // Lay payloads out page-aligned after the superblock, then pad the file
  // to a whole number of pages.
  std::vector<uint64_t> offsets(n);
  uint64_t cur = PageAlign(super_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] = cur;
    cur = PageAlign(cur + sections_[i].payload.size());
  }
  const uint64_t file_bytes = n == 0 ? PageAlign(super_bytes) : cur;

  BinaryWriter header;
  header.PutU32(kIndexFileMagic);
  header.PutU32(kIndexFileVersion);
  header.PutU8(kIndexEndianLittle);
  header.PutU8(0);
  header.PutU8(0);
  header.PutU8(0);
  header.PutU32(kIndexPageBytes);
  header.PutU32(static_cast<uint32_t>(n));
  header.PutU32(0);  // reserved2
  header.PutU64(file_bytes);
  for (std::size_t i = 0; i < n; ++i) {
    header.PutU32(static_cast<uint32_t>(sections_[i].type));
    header.PutU32(0);  // reserved
    header.PutU64(offsets[i]);
    header.PutU64(sections_[i].payload.size());
    header.PutU64(Fnv1a64(sections_[i].payload.data(),
                          sections_[i].payload.size()));
  }
  const std::vector<uint8_t>& head = header.buffer();
  PM_CHECK(head.size() == kHeaderBytes + n * kTableEntryBytes);
  header.PutU64(Fnv1a64(head.data(), head.size()));

  std::vector<uint8_t> file(static_cast<std::size_t>(file_bytes), 0);
  std::memcpy(file.data(), header.buffer().data(), header.buffer().size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!sections_[i].payload.empty()) {
      std::memcpy(file.data() + offsets[i], sections_[i].payload.data(),
                  sections_[i].payload.size());
    }
  }

  // Write through a .tmp sibling and rename so a crash mid-write never
  // leaves a half-written file under the final name. Durability needs more
  // than atomicity: fflush only moves bytes into the page cache, so
  // without an fsync of the data (before the rename) and of the directory
  // (after it) a power cut could surface the final name with stale or
  // zero-length contents. Both syncs are POSIX-gated; platforms without
  // them keep the atomic-rename guarantee only.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + tmp);
  }
  const std::size_t written = std::fwrite(file.data(), 1, file.size(), f);
  bool flushed = std::fflush(f) == 0;
#if PHRASEMINE_HAVE_MMAP
  if (flushed && ::fsync(::fileno(f)) != 0) flushed = false;
#endif
  std::fclose(f);
  if (written != file.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  // Power-cut site for the durability regression test: the data is synced
  // in the .tmp but the final name does not exist (or still holds the
  // previous version) -- exactly the state a crash here would leave.
  if (Status s = PM_FAILPOINT("index_file.write.before_rename"); !s.ok()) {
    std::remove(tmp.c_str());
    return s;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path);
  }
#if PHRASEMINE_HAVE_MMAP
  {
    // Make the rename itself durable: sync the containing directory's
    // entry table. Failure here is reported -- the caller believes the
    // persist survived a crash once this returns OK.
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos
            ? std::string(".")
            : (slash == 0 ? std::string("/") : path.substr(0, slash));
    const int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd < 0) {
      return Status::IOError("cannot open directory for fsync: " + dir);
    }
    const bool dir_synced = ::fsync(dfd) == 0;
    ::close(dfd);
    if (!dir_synced) {
      return Status::IOError("cannot fsync directory: " + dir);
    }
  }
#endif
  return Status::OK();
}

// --- IndexFile ---------------------------------------------------------------

IndexFile& IndexFile::operator=(IndexFile&& other) noexcept {
  if (this == &other) return *this;
  Release();
  path_ = std::move(other.path_);
  const bool owning = !other.mapped_;
  fallback_ = std::move(other.fallback_);
  data_ = owning && !fallback_.empty() ? fallback_.data() : other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  sections_ = std::move(other.sections_);
  open_ms_ = other.open_ms_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  return *this;
}

IndexFile::~IndexFile() { Release(); }

void IndexFile::Release() {
#if PHRASEMINE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), static_cast<std::size_t>(size_));
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

Result<IndexFile> IndexFile::Open(const std::string& path) {
  // Corrupt-open site: chaos tests inject Corruption/IOError here to prove
  // a poisoned index surfaces as a typed Status, never a crash.
  if (Status s = PM_FAILPOINT("index_file.open"); !s.ok()) return s;
  const auto start = std::chrono::steady_clock::now();
  IndexFile out;
  out.path_ = path;

  std::error_code ec;
  const std::uintmax_t stat_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat index file: " + path + ": " +
                           ec.message());
  }
  if (stat_size > std::numeric_limits<std::size_t>::max()) {
    return Status::IOError("index file too large to map: " + path);
  }
  const uint64_t size = static_cast<uint64_t>(stat_size);
  if (size < kHeaderBytes + kChecksumBytes) {
    return Status::Corruption("index file truncated (smaller than header): " +
                              path);
  }

#if PHRASEMINE_HAVE_MMAP
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open index file: " + path);
    }
    void* map = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map != MAP_FAILED) {
      out.data_ = static_cast<const uint8_t*>(map);
      out.size_ = size;
      out.mapped_ = true;
    }
  }
#endif
  if (out.data_ == nullptr) {
    // No mmap (or it failed): load the whole file into memory instead.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open index file: " + path);
    }
    out.fallback_.resize(static_cast<std::size_t>(size));
    const std::size_t got =
        std::fread(out.fallback_.data(), 1, out.fallback_.size(), f);
    std::fclose(f);
    if (got != out.fallback_.size()) {
      return Status::IOError("short read from index file: " + path);
    }
    out.data_ = out.fallback_.data();
    out.size_ = size;
  }

  // Validate the superblock, strictest-signal first: magic, version,
  // endian stamp, geometry, header checksum, then per-section bounds and
  // payload checksums.
  BinaryReader reader(std::span<const uint8_t>(out.data_, out.size_));
  uint32_t magic = 0, version = 0;
  uint8_t endian = 0, r0 = 0, r1 = 0, r2 = 0;
  uint32_t page_bytes = 0, num_sections = 0, reserved2 = 0;
  uint64_t file_bytes = 0;
  Status s;
  if (!(s = reader.GetU32(&magic)).ok()) return s;
  if (magic != kIndexFileMagic) {
    return Status::Corruption("not a phrasemine index file (bad magic): " +
                              path);
  }
  if (!(s = reader.GetU32(&version)).ok()) return s;
  if (version != kIndexFileVersion) {
    return Status::Corruption("unsupported index file version " +
                              std::to_string(version) + ": " + path);
  }
  if (!(s = reader.GetU8(&endian)).ok()) return s;
  if (endian != kIndexEndianLittle) {
    return Status::Corruption(
        "index file written on a foreign-endian host: " + path);
  }
  if (!(s = reader.GetU8(&r0)).ok()) return s;
  if (!(s = reader.GetU8(&r1)).ok()) return s;
  if (!(s = reader.GetU8(&r2)).ok()) return s;
  if (!(s = reader.GetU32(&page_bytes)).ok()) return s;
  if (page_bytes != kIndexPageBytes) {
    return Status::Corruption("unexpected index file page size " +
                              std::to_string(page_bytes) + ": " + path);
  }
  if (!(s = reader.GetU32(&num_sections)).ok()) return s;
  if (num_sections > kIndexMaxSections) {
    return Status::Corruption("index file section count out of range: " +
                              path);
  }
  if (!(s = reader.GetU32(&reserved2)).ok()) return s;
  if (!(s = reader.GetU64(&file_bytes)).ok()) return s;
  if (file_bytes != out.size_) {
    return Status::Corruption(
        file_bytes > out.size_
            ? "index file truncated: " + path
            : "index file size mismatch (trailing garbage): " + path);
  }
  const uint64_t super_bytes =
      kHeaderBytes + static_cast<uint64_t>(num_sections) * kTableEntryBytes +
      kChecksumBytes;
  if (super_bytes > out.size_) {
    return Status::Corruption("index file truncated (section table): " + path);
  }

  out.sections_.reserve(num_sections);
  std::vector<uint64_t> payload_sums(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t type = 0, reserved = 0;
    uint64_t offset = 0, payload = 0, checksum = 0;
    if (!(s = reader.GetU32(&type)).ok()) return s;
    if (!(s = reader.GetU32(&reserved)).ok()) return s;
    if (!(s = reader.GetU64(&offset)).ok()) return s;
    if (!(s = reader.GetU64(&payload)).ok()) return s;
    if (!(s = reader.GetU64(&checksum)).ok()) return s;
    if (type == 0) {
      return Status::Corruption("index file section has zero type: " + path);
    }
    if (offset % kIndexPageBytes != 0) {
      return Status::Corruption("index file section not page-aligned: " +
                                path);
    }
    // Overflow-safe bounds check: payload can't exceed the file, and the
    // section must end within it.
    if (payload > out.size_ || offset > out.size_ - payload ||
        offset < super_bytes) {
      return Status::Corruption("index file section out of bounds: " + path);
    }
    for (const Section& prior : out.sections_) {
      if (prior.type == static_cast<IndexSection>(type)) {
        return Status::Corruption("index file has duplicate section type: " +
                                  path);
      }
    }
    out.sections_.push_back(Section{static_cast<IndexSection>(type), offset,
                                    payload});
    payload_sums[i] = checksum;
  }

  const std::size_t table_end = kHeaderBytes + num_sections * kTableEntryBytes;
  uint64_t header_checksum = 0;
  if (!(s = reader.GetU64(&header_checksum)).ok()) return s;
  if (header_checksum != Fnv1a64(out.data_, table_end)) {
    return Status::Corruption("index file header checksum mismatch: " + path);
  }
  for (uint32_t i = 0; i < num_sections; ++i) {
    const Section& sec = out.sections_[i];
    if (payload_sums[i] !=
        Fnv1a64(out.data_ + sec.offset, static_cast<std::size_t>(sec.size))) {
      return Status::Corruption("index file section checksum mismatch: " +
                                path);
    }
  }

  out.open_ms_ = ElapsedMs(start);
  return out;
}

const IndexFile::Section* IndexFile::Find(IndexSection type) const {
  for (const Section& s : sections_) {
    if (s.type == type) return &s;
  }
  return nullptr;
}

bool IndexFile::has_section(IndexSection type) const {
  return Find(type) != nullptr;
}

std::span<const uint8_t> IndexFile::section(IndexSection type) const {
  const Section* s = Find(type);
  if (s == nullptr) return {};
  return std::span<const uint8_t>(data_ + s->offset,
                                  static_cast<std::size_t>(s->size));
}

uint64_t IndexFile::section_offset(IndexSection type) const {
  const Section* s = Find(type);
  return s == nullptr ? DiskBackend::kNoOffset : s->offset;
}

// --- MappedDisk --------------------------------------------------------------

namespace {
constexpr uint64_t kBlockBytes = kIndexPageBytes;
}  // namespace

MappedDisk::MappedDisk(const IndexFile* file) : file_(file) {
  // Unbacked ranges live in a synthetic address space past the end of the
  // file, with a one-block gap between ranges so distinct structures are
  // never block-adjacent (mirroring the simulator's distinct files).
  const uint64_t end = file_ == nullptr ? 0 : file_->file_bytes();
  synthetic_next_ = PageAlign(end) + kBlockBytes;
}

uint32_t MappedDisk::RegisterRange(uint64_t offset, uint64_t size_bytes) {
  Range r;
  r.size = size_bytes;
  const bool backed = offset != kNoOffset && file_ != nullptr &&
                      file_->data() != nullptr && size_bytes > 0 &&
                      offset <= file_->file_bytes() &&
                      size_bytes <= file_->file_bytes() - offset;
  if (backed) {
    r.base = offset;
    r.backed = true;
  } else {
    r.base = synthetic_next_;
    synthetic_next_ = PageAlign(synthetic_next_ + size_bytes) + kBlockBytes;
  }
  const uint64_t blocks =
      size_bytes == 0
          ? 0
          : (r.base + size_bytes - 1) / kBlockBytes - r.base / kBlockBytes + 1;
  r.touched.assign(static_cast<std::size_t>((blocks + 63) / 64), 0);
  const uint32_t id = static_cast<uint32_t>(ranges_.size());
  ranges_.push_back(std::move(r));
  return id;
}

void MappedDisk::Read(uint32_t file, uint64_t offset, uint64_t n) {
  if (n == 0) return;
  // Latency-injection site (a stalling device); injected errors are
  // surfaced by the tier-level "disk.read" site, not here -- this
  // measured path has no error channel.
  if (failpoint::Enabled()) (void)PM_FAILPOINT("disk.mapped.read");
  PM_CHECK(file < ranges_.size());
  Range& r = ranges_[file];
  PM_CHECK_MSG(offset <= r.size && n <= r.size - offset,
               "read past end of registered range");
  stats_.bytes_read += n;

  const auto start = std::chrono::steady_clock::now();
  const uint64_t range_first = r.base / kBlockBytes;
  const uint64_t first = (r.base + offset) / kBlockBytes;
  const uint64_t last = (r.base + offset + n - 1) / kBlockBytes;
  for (uint64_t block = first; block <= last; ++block) {
    ++stats_.page_requests;
    const uint64_t bit = block - range_first;
    uint64_t& word = r.touched[static_cast<std::size_t>(bit / 64)];
    const uint64_t mask = 1ull << (bit % 64);
    if (word & mask) {
      ++stats_.cache_hits;
      continue;
    }
    word |= mask;
    const bool sequential = has_last_block_ && block == last_block_ + 1;
    if (sequential) {
      ++stats_.sequential_fetches;
    } else {
      ++stats_.random_fetches;
    }
    has_last_block_ = true;
    last_block_ = block;
    if (r.backed) {
      // Fault the block in: one volatile read per block is enough to make
      // the kernel page the data into memory, which is the cost measured.
      const uint64_t addr = std::max(block * kBlockBytes, r.base);
      static_cast<void>(
          *static_cast<const volatile uint8_t*>(file_->data() + addr));
    }
  }
  stats_.cost_ms += ElapsedMs(start);
}

void MappedDisk::Reset() {
  stats_ = DiskStats{};
  has_last_block_ = false;
  for (Range& r : ranges_) {
    std::fill(r.touched.begin(), r.touched.end(), 0);
  }
#if PHRASEMINE_HAVE_MMAP
  // Drop the resident pages so the next touches re-fault (a measured cold
  // start). Best-effort: the data is still correct if madvise fails.
  if (file_ != nullptr && file_->data() != nullptr && file_->file_bytes() > 0) {
    ::madvise(const_cast<uint8_t*>(file_->data()),
              static_cast<std::size_t>(file_->file_bytes()), MADV_DONTNEED);
  }
#endif
}

}  // namespace phrasemine
