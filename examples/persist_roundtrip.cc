// Persistence round trip end to end: builds a monolithic engine and a
// sharded fleet over the same synthetic corpus, persists both to the
// single-file index format (engine.pmidx / fleet manifest + per-shard
// files), reopens them via mmap, and differential-verifies that every
// reopened instance ranks identically to its freshly built original --
// including the measured (mmap-backed) kNraDisk path, whose reported I/O
// is real first-touch block counts rather than simulator charges.
//
// Exits non-zero on any divergence, so the bench smoke step gates on it.
//
// Run from the build directory: ./example_persist_roundtrip
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "shard/sharded_engine.h"
#include "text/synthetic.h"

namespace {

using namespace phrasemine;

Corpus MakeCorpus() {
  SyntheticCorpusOptions options;
  options.seed = 4321;
  options.num_docs = 300;
  options.num_topics = 5;
  options.topic_vocab = 100;
  options.shared_vocab = 300;
  options.num_stopwords = 20;
  options.phrases_per_topic = 15;
  options.min_doc_tokens = 30;
  options.max_doc_tokens = 90;
  SyntheticCorpusGenerator generator(options);
  return generator.Generate();
}

std::vector<std::pair<PhraseId, double>> Signature(const MineResult& r) {
  std::vector<std::pair<PhraseId, double>> sig;
  sig.reserve(r.phrases.size());
  for (const MinedPhrase& p : r.phrases) sig.emplace_back(p.phrase, p.score);
  return sig;
}

int Main() {
  const std::string engine_path = "example_roundtrip.pmidx";
  const std::string fleet_prefix = "example_roundtrip_fleet";
  int failures = 0;

  // --- Monolithic engine ----------------------------------------------------
  MiningEngine original = MiningEngine::Build(MakeCorpus());
  auto query = original.ParseQuery("topic:0 topic:1", QueryOperator::kOr);
  if (!query.ok()) {
    std::printf("query parse failed: %s\n", query.status().message().c_str());
    return 1;
  }
  (void)original.Mine(query.value(), Algorithm::kSmj);  // materialize lists

  if (Status saved = original.SaveToFile(engine_path); !saved.ok()) {
    std::printf("persist failed: %s\n", saved.message().c_str());
    return 1;
  }
  auto reopened = MiningEngine::LoadFromFile(engine_path);
  if (!reopened.ok()) {
    std::printf("reopen failed: %s\n", reopened.status().message().c_str());
    return 1;
  }
  std::printf("engine reopened: %llu file bytes, cold open %.2f ms\n",
              static_cast<unsigned long long>(
                  reopened.value().index_file()->file_bytes()),
              reopened.value().index_file()->open_ms());

  for (Algorithm a :
       {Algorithm::kExact, Algorithm::kGm, Algorithm::kSimitsis,
        Algorithm::kSmj, Algorithm::kNra, Algorithm::kNraDisk}) {
    const MineResult before = original.Mine(query.value(), a);
    const MineResult after = reopened.value().Mine(query.value(), a);
    const bool same = Signature(before) == Signature(after);
    if (!same) ++failures;
    if (a == Algorithm::kNraDisk) {
      std::printf("  %-9s %s (measured: %llu blocks, %llu bytes)\n",
                  AlgorithmName(a), same ? "identical" : "DIVERGED",
                  static_cast<unsigned long long>(after.disk_io.blocks_read),
                  static_cast<unsigned long long>(after.disk_io.bytes));
    } else {
      std::printf("  %-9s %s\n", AlgorithmName(a),
                  same ? "identical" : "DIVERGED");
    }
  }
  std::remove(engine_path.c_str());

  // --- Sharded fleet --------------------------------------------------------
  ShardedEngineOptions fleet_options;
  fleet_options.num_shards = 3;
  fleet_options.persist_path = fleet_prefix;
  ShardedEngine fleet = ShardedEngine::Build(MakeCorpus(), fleet_options);
  if (!fleet.persist_status().ok()) {
    std::printf("fleet persist failed: %s\n",
                fleet.persist_status().message().c_str());
    return 1;
  }
  auto refleet = ShardedEngine::LoadFromFiles(fleet_prefix);
  if (!refleet.ok()) {
    std::printf("fleet reopen failed: %s\n",
                refleet.status().message().c_str());
    return 1;
  }
  std::printf("fleet reopened: %zu shards, %zu docs\n",
              refleet.value().num_shards(), refleet.value().num_docs());
  for (Algorithm a : {Algorithm::kExact, Algorithm::kSmj, Algorithm::kNra}) {
    const ShardedMineResult before = fleet.Mine(query.value(), a);
    const ShardedMineResult after = refleet.value().Mine(query.value(), a);
    const bool same = Signature(before.result) == Signature(after.result) &&
                      before.texts == after.texts;
    if (!same) ++failures;
    std::printf("  %-9s %s\n", AlgorithmName(a),
                same ? "identical" : "DIVERGED");
  }
  std::remove(ShardedEngine::FleetManifestPath(fleet_prefix).c_str());
  for (std::size_t s = 0; s < 3; ++s) {
    std::remove(ShardedEngine::ShardFilePath(fleet_prefix, s).c_str());
  }

  if (failures != 0) {
    std::printf("FAIL: %d reopened configurations diverged\n", failures);
    return 1;
  }
  std::printf("persist round trip OK\n");
  return 0;
}

}  // namespace

int main() { return Main(); }
