// Demonstrates the observability surface end to end: a disk-backed sharded
// service answers one cold and one warm traced query, prints each explain
// tree (plan -> cache lookup -> scatter/exchange/fill/gather/materialize,
// with per-shard disk reads), dumps the slow-query log, and finishes with
// the full Prometheus text exposition of the service's metric registry.
//
// Run from the build directory: ./example_trace_explain
#include <cstdio>
#include <string>
#include <utility>

#include "service/cache.h"
#include "service/service.h"
#include "shard/sharded_engine.h"
#include "text/synthetic.h"

namespace {

phrasemine::Corpus MakeCorpus() {
  phrasemine::SyntheticCorpusOptions options;
  options.seed = 1234;
  options.num_docs = 400;
  options.num_topics = 6;
  options.topic_vocab = 120;
  options.shared_vocab = 400;
  options.num_stopwords = 30;
  options.phrases_per_topic = 20;
  options.min_doc_tokens = 40;
  options.max_doc_tokens = 120;
  phrasemine::SyntheticCorpusGenerator generator(options);
  return generator.Generate();
}

void Show(const char* heading, const phrasemine::ServiceReply& reply) {
  std::printf("== %s (%s, %.3f ms)\n", heading,
              reply.result_cache_hit ? "result-cache hit" : "executed",
              reply.latency_ms);
  if (reply.trace != nullptr) {
    std::fputs(reply.trace->Explain().c_str(), stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace phrasemine;

  // Disk-backed fleet: a zero block budget spills every shard list, so the
  // NRA-disk trace below shows real (simulated) block reads and seeks.
  ShardedEngineOptions engine_options;
  engine_options.num_shards = 3;
  engine_options.engine.extractor.min_df = 2;
  engine_options.disk_backed = true;
  ShardedEngine sharded = ShardedEngine::Build(MakeCorpus(),
                                               std::move(engine_options));

  PhraseServiceOptions service_options;
  service_options.pool.num_threads = 2;
  service_options.slow_query_ms = 0.001;  // log everything, for the demo
  PhraseService service(&sharded, service_options);

  ServiceRequest request;
  request.query = sharded.ParseQuery("topic:0 topic:1",
                                     QueryOperator::kOr).value();
  request.options.k = 10;
  request.options.trace = true;
  request.algorithm = Algorithm::kNraDisk;

  // Cold: plans, scatters across the shards, reads the disk tier.
  Show("cold traced query", service.MineSync(request));

  // Warm: identical request, served from the result cache -- the trace
  // collapses to plan + cache lookup.
  Show("warm traced query", service.MineSync(request));

  std::printf("== slow-query log (threshold %.3f ms)\n",
              service.options().slow_query_ms);
  for (const PhraseService::SlowQueryEntry& entry : service.slow_queries()) {
    std::printf("%.3f ms  %s\n", entry.latency_ms, entry.description.c_str());
  }
  std::printf("\n== metrics exposition\n");
  std::fputs(service.metrics_snapshot().ToPrometheusText().c_str(), stdout);
  return 0;
}
