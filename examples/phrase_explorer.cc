// Interactive phrase explorer: the "analyst drill-down" loop the paper's
// introduction motivates, as a small REPL. Load your own corpus (one
// document per line, optionally "facets<TAB>body") or generate a synthetic
// one, then type queries and compare algorithms interactively.
//
// Usage:
//   phrase_explorer                     # 4000-doc synthetic newswire corpus
//   phrase_explorer corpus.txt          # plain one-doc-per-line file
//   phrase_explorer corpus.tsv faceted  # "facets<TAB>body" lines
//
// REPL commands:
//   <words>            OR query with the default algorithm (SMJ)
//   and <words>        AND query
//   or <words>         OR query
//   algo <name>        switch algorithm: exact | gm | simitsis | nra | smj
//   k <n>              result count
//   frac <f>           partial-list fraction (rebuilds SMJ lists)
//   save <dir>         persist the engine snapshot
//   quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/result_filter.h"
#include "text/corpus_io.h"
#include "text/synthetic.h"

using namespace phrasemine;

namespace {

Algorithm ParseAlgorithm(const std::string& name, Algorithm fallback) {
  if (name == "exact") return Algorithm::kExact;
  if (name == "gm") return Algorithm::kGm;
  if (name == "simitsis") return Algorithm::kSimitsis;
  if (name == "nra") return Algorithm::kNra;
  if (name == "nradisk") return Algorithm::kNraDisk;
  if (name == "smj") return Algorithm::kSmj;
  std::printf("unknown algorithm '%s'\n", name.c_str());
  return fallback;
}

void RunQuery(MiningEngine& engine, const std::string& words,
              QueryOperator op, Algorithm algorithm,
              const MineOptions& options) {
  auto query = engine.ParseQuery(words, op);
  if (!query.ok()) {
    std::printf("  %s\n", query.status().ToString().c_str());
    return;
  }
  MineResult result = engine.Mine(query.value(), algorithm, options);
  std::printf("  [%s, %s, %.3f ms%s]\n", AlgorithmName(algorithm),
              QueryOperatorName(op), result.TotalMs(),
              result.disk_ms > 0 ? " incl. simulated disk" : "");
  if (result.phrases.empty()) {
    std::printf("  (no results)\n");
    return;
  }
  for (const MinedPhrase& p : result.phrases) {
    std::printf("  %-44s %.3f\n", engine.PhraseText(p.phrase).c_str(),
                p.interestingness);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Corpus corpus;
  if (argc > 1) {
    const bool faceted = argc > 2 && std::string(argv[2]) == "faceted";
    auto loaded = faceted ? CorpusReader::FromFacetedFile(argv[1])
                          : CorpusReader::FromPlainFile(argv[1]);
    if (!loaded.ok()) {
      std::printf("failed to load %s: %s\n", argv[1],
                  loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded.value());
  } else {
    std::printf("no corpus file given; generating a synthetic one...\n");
    SyntheticCorpusOptions options = SyntheticCorpusGenerator::ReutersLike();
    options.num_docs = 4000;
    SyntheticCorpusGenerator generator(options);
    corpus = generator.Generate();
  }

  std::printf("indexing %zu documents...\n", corpus.size());
  MiningEngine engine = MiningEngine::Build(std::move(corpus));
  std::printf("ready: %zu phrases, %zu terms. Type a query ('quit' exits).\n",
              engine.dict().size(), engine.corpus().vocab().size());

  Algorithm algorithm = Algorithm::kSmj;
  MineOptions options;
  options.k = 5;

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream stream(line);
    std::string head;
    if (!(stream >> head)) continue;
    std::string rest;
    std::getline(stream, rest);

    if (head == "quit" || head == "exit") break;
    if (head == "algo") {
      std::istringstream r(rest);
      std::string name;
      r >> name;
      algorithm = ParseAlgorithm(name, algorithm);
      continue;
    }
    if (head == "k") {
      options.k = static_cast<std::size_t>(std::atoll(rest.c_str()));
      continue;
    }
    if (head == "frac") {
      const double fraction = std::atof(rest.c_str());
      engine.SetSmjFraction(fraction);
      options.list_fraction = fraction;
      std::printf("  partial-list fraction = %.2f\n", fraction);
      continue;
    }
    if (head == "save") {
      std::istringstream r(rest);
      std::string dir;
      r >> dir;
      Status s = engine.SaveToDirectory(dir);
      std::printf("  %s\n", s.ToString().c_str());
      continue;
    }
    if (head == "and") {
      RunQuery(engine, rest, QueryOperator::kAnd, algorithm, options);
      continue;
    }
    if (head == "or") {
      RunQuery(engine, rest, QueryOperator::kOr, algorithm, options);
      continue;
    }
    RunQuery(engine, line, QueryOperator::kOr, algorithm, options);
  }
  return 0;
}
