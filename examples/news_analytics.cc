// News-analytics scenario (the paper's motivating use case): an analyst
// drills down into a newswire corpus with keyword and metadata-facet
// queries and summarizes each sub-collection with its most interesting
// phrases -- the real-time "characteristic phrases" panel of a text
// analytics dashboard.
//
// Usage: news_analytics [num_docs]   (default 4000 for a quick run)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "eval/query_gen.h"
#include "text/synthetic.h"

using namespace phrasemine;

namespace {

void ShowTop(MiningEngine& engine, const Query& query, const char* label) {
  MineResult result = engine.Mine(query, Algorithm::kSmj, MineOptions{.k = 5});
  std::printf("%s  [%s]  (%.3f ms, |D'| via exact path omitted)\n", label,
              query.ToString(engine.corpus().vocab()).c_str(),
              result.TotalMs());
  for (const auto& p : result.phrases) {
    std::printf("    %-40s %.3f\n", engine.PhraseText(p.phrase).c_str(),
                p.interestingness);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_docs = 4000;
  if (argc > 1) num_docs = static_cast<std::size_t>(std::atoll(argv[1]));

  // Newswire-shaped synthetic corpus (see DESIGN.md on the substitution for
  // Reuters-21578). Facets topic:<t> and year:<y> are attached to every doc.
  SyntheticCorpusOptions corpus_options =
      SyntheticCorpusGenerator::ReutersLike();
  corpus_options.num_docs = num_docs;
  SyntheticCorpusGenerator generator(corpus_options);

  std::printf("generating %zu newswire-like documents...\n", num_docs);
  MiningEngine engine = MiningEngine::Build(generator.Generate());
  std::printf("dictionary: %zu phrases, vocabulary: %zu terms\n\n",
              engine.dict().size(), engine.corpus().vocab().size());

  // --- Keyword drill-down ---------------------------------------------------
  // Harvest a realistic workload from frequent phrases, as an analyst
  // typing topical keywords would.
  QuerySetGenerator qgen(QueryGenOptions{.seed = 11, .num_queries = 3});
  auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  for (const Query& q : queries) {
    Query and_query = q;
    and_query.op = QueryOperator::kAnd;
    ShowTop(engine, and_query, "keyword AND drill-down");
    Query or_query = q;
    or_query.op = QueryOperator::kOr;
    ShowTop(engine, or_query, "keyword OR drill-down ");
  }

  // --- Metadata-facet drill-down (Table 1 of the paper) -----------------------
  // Facets are interned like words, so a facet query is just a query on the
  // facet terms: e.g. all documents about topic 0 from one year.
  auto facet_query =
      engine.ParseQuery("topic:0 year:1995", QueryOperator::kAnd);
  if (facet_query.ok()) {
    ShowTop(engine, facet_query.value(), "facet AND drill-down  ");
  }
  auto topic_query = engine.ParseQuery("topic:1", QueryOperator::kAnd);
  if (topic_query.ok()) {
    ShowTop(engine, topic_query.value(), "facet topic summary   ");
  }
  return 0;
}
