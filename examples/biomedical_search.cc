// Biomedical-literature scenario: interactive phrase search over a large
// abstract collection, contrasting (a) response time of the exact GM
// baseline vs the paper's SMJ/NRA on the same queries, (b) the accuracy
// cost of partial lists, and (c) disk-resident operation with the
// Section 5.5 cost model.
//
// Usage: biomedical_search [num_docs]   (default 6000 for a quick run)

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "eval/experiment.h"
#include "eval/query_gen.h"
#include "text/synthetic.h"

using namespace phrasemine;

int main(int argc, char** argv) {
  std::size_t num_docs = 6000;
  if (argc > 1) num_docs = static_cast<std::size_t>(std::atoll(argv[1]));

  std::printf("generating %zu abstract-like documents...\n", num_docs);
  SyntheticCorpusGenerator generator(
      SyntheticCorpusGenerator::PubmedLike(num_docs));
  MiningEngine engine = MiningEngine::Build(generator.Generate());
  std::printf("dictionary: %zu phrases\n\n", engine.dict().size());

  QuerySetGenerator qgen(QueryGenOptions{.seed = 52, .num_queries = 10});
  const auto queries = qgen.Generate(engine.dict(), engine.inverted(), engine.corpus().size());
  engine.EnsureWordListsFor(queries);

  // --- (a) Response time: exact baseline vs list-based methods ----------------
  std::printf("%-10s %-4s %12s\n", "method", "op", "avg ms/query");
  for (QueryOperator op : {QueryOperator::kAnd, QueryOperator::kOr}) {
    for (Algorithm algorithm :
         {Algorithm::kGm, Algorithm::kSmj, Algorithm::kNra}) {
      AggregateRun run = RunExperiment(engine, queries, op, algorithm,
                                       MineOptions{.k = 5},
                                       /*evaluate_quality=*/false);
      std::printf("%-10s %-4s %12.3f\n", AlgorithmName(algorithm),
                  QueryOperatorName(op), run.avg_total_ms);
    }
  }

  // --- (b) Accuracy under partial lists ---------------------------------------
  std::printf("\npartial-list accuracy (SMJ vs exact, AND queries):\n");
  std::printf("%-10s %8s %8s\n", "fraction", "NDCG", "Prec");
  for (double fraction : {0.1, 0.2, 0.5, 1.0}) {
    engine.SetSmjFraction(fraction);
    AggregateRun run =
        RunExperiment(engine, queries, QueryOperator::kAnd, Algorithm::kSmj,
                      MineOptions{.k = 5}, /*evaluate_quality=*/true);
    std::printf("%9.0f%% %8.3f %8.3f\n", fraction * 100, run.quality.ndcg,
                run.quality.precision);
  }

  // --- (c) Disk-resident NRA ---------------------------------------------------
  std::printf("\ndisk-resident NRA (32KiB pages, 16-page LRU, 1ms/10ms):\n");
  AggregateRun disk_run = RunExperiment(
      engine, queries, QueryOperator::kAnd, Algorithm::kNraDisk,
      MineOptions{.k = 5, .list_fraction = 0.5}, /*evaluate_quality=*/false);
  std::printf("  compute %.3f ms + disk %.3f ms = %.3f ms/query\n",
              disk_run.avg_compute_ms, disk_run.avg_disk_ms,
              disk_run.avg_total_ms);
  return 0;
}
