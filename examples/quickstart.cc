// Quickstart: build a MiningEngine over a handful of documents and mine the
// top interesting phrases for a keyword query with each algorithm.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "text/corpus.h"

using phrasemine::Algorithm;
using phrasemine::Corpus;
using phrasemine::MineOptions;
using phrasemine::MineResult;
using phrasemine::MiningEngine;
using phrasemine::Query;
using phrasemine::QueryOperator;

int main() {
  // 1. Assemble a corpus. In a real application these would be your
  //    documents; AddText tokenizes for you.
  Corpus corpus;
  corpus.AddText("query optimization uses cost models for join order search");
  corpus.AddText("the optimizer applies query optimization to pick join order");
  corpus.AddText("join order enumeration is the heart of query optimization");
  corpus.AddText("cost models guide query optimization in modern databases");
  corpus.AddText("operating systems schedule threads on many cores");
  corpus.AddText("the kernel of operating systems manages page tables");
  corpus.AddText("threads and locks are core to operating systems design");
  corpus.AddText("virtual memory and page tables in operating systems");

  // 2. Build the engine: extracts the phrase dictionary (n-grams up to 6
  //    words above a document-frequency floor) and all indexes.
  MiningEngine::Options options;
  options.extractor.min_df = 2;  // Tiny corpus: accept phrases in >= 2 docs.
  MiningEngine engine = MiningEngine::Build(std::move(corpus), options);
  std::printf("corpus: %zu docs, %zu phrases in dictionary\n\n",
              engine.corpus().size(), engine.dict().size());

  // 3. Parse a query. The sub-collection D' is every document containing
  //    both words (AND) or either word (OR).
  auto query = engine.ParseQuery("query optimization", QueryOperator::kAnd);
  if (!query.ok()) {
    std::printf("query failed: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // 4. Mine with each algorithm and compare.
  MineOptions mine_options;
  mine_options.k = 5;
  for (Algorithm algorithm :
       {Algorithm::kExact, Algorithm::kGm, Algorithm::kNra, Algorithm::kSmj}) {
    MineResult result = engine.Mine(query.value(), algorithm, mine_options);
    std::printf("top-%zu by %s (%.3f ms):\n", mine_options.k,
                phrasemine::AlgorithmName(algorithm), result.TotalMs());
    for (const auto& p : result.phrases) {
      std::printf("  %-28s interestingness=%.3f\n",
                  engine.PhraseText(p.phrase).c_str(), p.interestingness);
    }
    std::printf("\n");
  }
  return 0;
}
