// Serving interesting-phrase queries concurrently through PhraseService:
// the thread pool executes, the cost planner picks the algorithm per
// query, and the sharded caches absorb repeated work. Run it twice worth
// of submissions and watch the second round hit the result cache.

#include <cstdio>
#include <future>
#include <vector>

#include "core/engine.h"
#include "eval/query_gen.h"
#include "service/service.h"
#include "text/synthetic.h"

using namespace phrasemine;

int main() {
  // A small synthetic news-like corpus (deterministic).
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_docs = 800;
  SyntheticCorpusGenerator generator(corpus_options);
  MiningEngine engine = MiningEngine::Build(generator.Generate());
  std::printf("corpus: %zu docs, %zu phrases\n\n", engine.corpus().size(),
              engine.dict().size());

  // Harvest a few realistic keyword queries from the corpus itself.
  QueryGenOptions gen_options;
  gen_options.num_queries = 6;
  gen_options.min_term_df = 6;
  gen_options.min_pairwise_codf = 2;
  gen_options.min_and_matches = 2;
  std::vector<Query> queries = QuerySetGenerator(gen_options).Generate(
      engine.dict(), engine.inverted(), engine.corpus().size());
  if (queries.empty()) {
    std::printf("no queries harvested; try a larger corpus\n");
    return 1;
  }

  PhraseServiceOptions options;
  options.pool.num_threads = 4;
  PhraseService service(&engine, options);

  // Submit everything twice: the second wave is served from the cache.
  std::vector<std::future<ServiceReply>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const Query& q : queries) {
      futures.push_back(service.Submit(ServiceRequest{q, MineOptions{}, {}}));
    }
  }

  std::size_t i = 0;
  for (auto& future : futures) {
    ServiceReply reply = future.get();
    const Query& q = queries[i % queries.size()];
    std::printf("query \"%s\" -> %s%s\n",
                q.ToString(engine.corpus().vocab()).c_str(),
                reply.plan.ToString().c_str(),
                reply.result_cache_hit ? " [cache hit]" : "");
    for (const MinedPhrase& p : reply.result.phrases) {
      std::printf("    %-40s score=%.4f\n",
                  engine.PhraseText(p.phrase).c_str(), p.score);
    }
    ++i;
  }

  std::printf("\n--- service stats ---\n%s\n", service.stats().ToString().c_str());
  return 0;
}
