// Sharded serving walkthrough: partition a corpus into a ShardedEngine,
// put PhraseService in front of it, and watch the pieces the sharded
// design adds -- scatter-gather mining with per-shard cost planning,
// composite epoch vectors keying the result cache, ingest routed to one
// owning shard, and shard-by-shard rebuild (the shrunken blast radius).
//
// Build: cmake --build build --target example_sharded_service
// Run:   ./build/example_sharded_service

#include <cstdio>
#include <string>

#include "service/service.h"
#include "shard/sharded_engine.h"
#include "text/synthetic.h"

using namespace phrasemine;

namespace {

void PrintReply(const char* label, const ServiceReply& reply) {
  std::printf("%s: %zu phrases, cache_hit=%d, epochs [", label,
              reply.result.phrases.size(), reply.result_cache_hit ? 1 : 0);
  for (uint64_t e : reply.result.shard_epochs) {
    std::printf("%llu ", static_cast<unsigned long long>(e));
  }
  std::printf("], guarantee=%s\n", UpdateGuaranteeName(reply.result.guarantee));
  for (std::size_t i = 0; i < reply.result.phrases.size(); ++i) {
    std::printf("  %zu. %-40s I=%.4f\n", i + 1,
                reply.phrase_texts[i].c_str(),
                reply.result.phrases[i].interestingness);
  }
}

}  // namespace

int main() {
  // A Reuters-shaped synthetic corpus, hash-partitioned into 4 shards.
  SyntheticCorpusOptions corpus_options =
      SyntheticCorpusGenerator::ReutersLike();
  corpus_options.num_docs = 3000;
  SyntheticCorpusGenerator generator(corpus_options);

  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = 4;
  ShardedEngine sharded =
      ShardedEngine::Build(generator.Generate(), sharded_options);
  std::printf("built %zu shards over %zu documents\n", sharded.num_shards(),
              sharded.num_docs());
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    std::printf("  shard %zu: %zu docs, %zu phrases\n", s,
                sharded.shard(s).corpus().size(),
                sharded.shard(s).dict().size());
  }

  PhraseServiceOptions service_options;
  service_options.pool.num_threads = 4;
  PhraseService service(&sharded, service_options);

  // Facet terms always parse on synthetic corpora.
  const Query query =
      sharded.ParseQuery("topic:0 topic:1", QueryOperator::kOr).value();

  // Planned execution: the service gathers per-shard planner inputs and
  // picks the algorithm whose slowest shard (makespan) is cheapest.
  ServiceReply planned = service.MineSync({query, MineOptions{}, {}});
  std::printf("\nplan: %s\n", planned.plan.ToString().c_str());
  PrintReply("planned", planned);

  // Same request again: served from the result cache under the same
  // composite epoch vector.
  PrintReply("repeat ", service.MineSync({query, MineOptions{}, {}}));

  // Ingest one document: it routes to exactly one owning shard, whose
  // epoch advances -- the old cache entries become unreachable by key.
  UpdateDoc doc;
  doc.tokens = {"breaking", "news", "about", "sharding"};
  doc.facets = {"topic:0"};
  const UpdateStats stats = service.Ingest(std::move(doc));
  std::printf("\ningested 1 doc: composite epoch %llu, pending %zu\n",
              static_cast<unsigned long long>(stats.epoch),
              stats.pending_updates);
  ServiceReply fresh = service.MineSync({query, MineOptions{}, {}});
  PrintReply("fresh  ", fresh);

  // Forced exact scatter-gather: the merge recomputes Eq. 1 from summed
  // per-shard supports, so this equals a monolithic engine's answer.
  PrintReply("exact  ",
             service.MineSync({query, MineOptions{}, Algorithm::kExact}));

  // Shard-by-shard rebuild: only one shard is ever mid-rebuild, queries
  // keep flowing against the other three.
  sharded.Rebuild();
  ServiceReply rebuilt = service.MineSync({query, MineOptions{}, {}});
  PrintReply("rebuilt", rebuilt);

  std::printf("\nservice stats:\n%s\n", service.stats().ToString().c_str());
  return 0;
}
