// Incremental-update scenario (Section 4.5.1): the corpus keeps receiving
// new documents after the word lists were built. Instead of rebuilding, a
// DeltaIndex accumulates insertions/deletions and SMJ/NRA consult it to
// correct each pre-computed conditional probability at query time.

#include <cstdio>

#include "core/delta_index.h"
#include "core/engine.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

using namespace phrasemine;

namespace {

void Show(MiningEngine& engine, const Query& q, const MineOptions& options,
          const char* label) {
  MineResult r = engine.Mine(q, Algorithm::kSmj, options);
  std::printf("%s\n", label);
  for (const auto& p : r.phrases) {
    std::printf("    %-30s %.3f\n", engine.PhraseText(p.phrase).c_str(),
                p.interestingness);
  }
}

}  // namespace

int main() {
  Corpus corpus;
  // Base collection: "merger talks" is moderately tied to "bank".
  for (int i = 0; i < 6; ++i) {
    corpus.AddText("bank merger talks continue amid market rally today");
  }
  for (int i = 0; i < 6; ++i) {
    corpus.AddText("merger talks between airlines stall on price terms");
  }
  for (int i = 0; i < 6; ++i) {
    corpus.AddText("bank lending rates rise as market cools further");
  }

  MiningEngine::Options options;
  options.extractor.min_df = 3;
  MiningEngine engine = MiningEngine::Build(std::move(corpus), options);

  Query query = engine.ParseQuery("bank", QueryOperator::kAnd).value();
  MineOptions mine_options;
  mine_options.k = 3;
  Show(engine, query, mine_options, "before updates:");

  // Track one specific phrase through the update: "merger talks" starts
  // with P(bank | "merger talks") = 6/12 = 0.5.
  const TermId bank = engine.corpus().vocab().Lookup("bank");
  const PhraseId merger_talks = engine.dict().Find(std::vector<TermId>{
      engine.corpus().vocab().Lookup("merger"),
      engine.corpus().vocab().Lookup("talks")});
  double base_prob = 0.0;
  engine.EnsureWordLists(std::vector<TermId>{bank});
  for (const ListEntry& e : engine.word_lists().list(bank)) {
    if (e.phrase == merger_talks) base_prob = e.prob;
  }
  std::printf("\nP(bank | \"merger talks\") in the stored list: %.3f\n",
              base_prob);

  // A burst of new documents arrives: suddenly every "merger talks" story
  // is a bank story. A full index rebuild would be needed to reflect this;
  // the delta index absorbs it instead.
  DeltaIndex delta(engine.dict());
  Tokenizer tokenizer;
  for (int i = 0; i < 8; ++i) {
    std::vector<TermId> tokens;
    for (const std::string& w :
         tokenizer.Tokenize("bank merger talks accelerate after market close")) {
      // Words unseen at build time cannot affect the frozen dictionary;
      // they are picked up at the next offline rebuild.
      const TermId t = engine.corpus().vocab().Lookup(w);
      if (t != kInvalidTermId) tokens.push_back(t);
    }
    delta.AddDocument(tokens);
  }
  std::printf("\nabsorbed %zu updates into the delta index\n\n",
              delta.pending_updates());

  mine_options.delta = &delta;
  Show(engine, query, mine_options, "after updates (delta-adjusted):");
  std::printf(
      "\nP(bank | \"merger talks\") corrected by the delta at query time: "
      "%.3f\n",
      delta.AdjustedProb(bank, merger_talks, base_prob));

  std::printf(
      "\nNote: phrases that only became frequent through the new documents\n"
      "enter the dictionary at the next offline rebuild, per the paper.\n");

  // --- The managed path: ApplyUpdate + epochs + Rebuild ---------------------
  // Instead of wiring a DeltaIndex by hand, hand the batch to the engine:
  // it maintains the overlay per epoch, applies it to every mine, and
  // stamps each result with the guarantee that held.
  std::printf("\n=== engine-managed live updates ===\n\n");
  UpdateBatch batch;
  for (int i = 0; i < 8; ++i) {
    batch.inserts.push_back(UpdateDoc{
        {"bank", "merger", "talks", "accelerate", "after", "market", "close"},
        {}});
  }
  const UpdateStats stats = engine.ApplyUpdate(batch);
  std::printf("epoch %llu: +%zu docs, overlay at %.0f%% of the corpus%s\n",
              static_cast<unsigned long long>(stats.epoch),
              stats.batch_inserts, 100.0 * stats.delta_fraction,
              stats.rebuild_recommended ? " -> rebuild recommended" : "");

  mine_options.delta = nullptr;  // the engine applies its own overlay now
  MineResult live = engine.Mine(query, Algorithm::kSmj, mine_options);
  std::printf("mined at epoch %llu under guarantee \"%s\"\n",
              static_cast<unsigned long long>(live.epoch),
              UpdateGuaranteeName(live.guarantee));

  // The overlay crossed the default 25%% threshold above; a production
  // deployment lets PhraseService run this on its thread pool.
  engine.Rebuild();
  MineResult rebuilt = engine.Mine(query, Algorithm::kSmj, mine_options);
  std::printf("after Rebuild(): epoch %llu, guarantee \"%s\", %zu live docs\n",
              static_cast<unsigned long long>(rebuilt.epoch),
              UpdateGuaranteeName(rebuilt.guarantee), engine.corpus().size());
  return 0;
}
