#!/usr/bin/env bash
# Runs every paper-figure bench binary for one tiny iteration so the
# reproduction benches cannot silently bit-rot: each must build, run to
# completion and exit 0 on a miniature workload. Output is discarded --
# this checks liveness, not numbers (the throughput benches with real
# targets, bench_service_throughput and bench_shard_scaling, run as their
# own CI steps).
#
# Usage: scripts/bench_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR=${1:-build}

# Miniature corpora/workloads: every knob the benches read. The kernel
# microbench runs tiny lists here and stays informational (its >=2x target
# is only enforced when PM_KERNEL_ENFORCE=1, which the dedicated CI step
# sets on the full-size run).
export PM_REUTERS_DOCS=250
export PM_PUBMED_DOCS=250
export PM_REUTERS_QUERIES=4
export PM_PUBMED_QUERIES=4
export PM_SCALING_BASE_DOCS=250
export PM_KERNEL_SHORT=50
export PM_KERNEL_LONG=2000
export PM_KERNEL_MS=20
# Disk-tier bench: tiny corpora keep the >=2x scaling target meaningless
# (per-list seek constants dominate), so the run is informational here --
# the target is only enforced under PM_DISK_ENFORCE=1 in its dedicated CI
# step. The placement differential (exit 3) still gates at this scale.
export PM_DISK_DOCS=250
export PM_DISK_QUERIES=4
export PM_DISK_PASSES=1
# Workload replay: a tiny trace keeps the placement differential
# informational (enforced only under PM_WORKLOAD_ENFORCE=1 in its
# dedicated CI step), but the determinism and placement-invariance
# checks (exit 3) still gate at this scale.
export PM_WORKLOAD_DOCS=250
export PM_WORKLOAD_POOL=6
export PM_WORKLOAD_EVENTS=60
# Subscription throughput: at smoke scale the re-mine budget (exit 2) and
# the published-vs-fresh differential (exit 3) both still gate; only the
# throughput numbers are meaningless here.
export PM_SUB_DOCS=300
export PM_SUB_BATCHES=20
export PM_SUB_SUBS=4

benches=(
  kernel_microbench
  disk_tier_scaling
  workload_replay
  subscription_throughput
  fig05_06_quality
  fig07_08_smj_vs_gm
  fig09_10_nra_breakdown
  fig11_traversal
  fig12_13_nra_vs_gm
  table4_examples
  table5_index_sizes
  table6_interestingness
  table7_summary
  ablation_batch_size
  ablation_crossover
  ablation_incremental
  ablation_or_order
)

for b in "${benches[@]}"; do
  bin="$BUILD_DIR/bench_$b"
  if [ ! -x "$bin" ]; then
    echo "FAIL: $bin missing or not executable" >&2
    exit 1
  fi
  echo "== bench_$b"
  if ! "$bin" > /dev/null; then
    echo "FAIL: bench_$b exited non-zero" >&2
    exit 1
  fi
done

# The trace/explain example is the runnable tour of the observability
# surface (traced queries, slow-query log, Prometheus exposition); run it
# here so it cannot bit-rot either.
echo "== example_trace_explain"
if ! "$BUILD_DIR/example_trace_explain" > /dev/null; then
  echo "FAIL: example_trace_explain exited non-zero" >&2
  exit 1
fi

# Persist/reopen smoke: builds, persists and reopens both a monolithic
# engine and a sharded fleet through the single-file index format, and
# exits non-zero if any reopened instance ranks differently from its
# original (the restart contract, gated at smoke scale).
echo "== example_persist_roundtrip"
if ! (cd "$BUILD_DIR" && ./example_persist_roundtrip > /dev/null); then
  echo "FAIL: example_persist_roundtrip exited non-zero" >&2
  exit 1
fi

echo "bench smoke OK (${#benches[@]} paper-figure binaries ran)"
