#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_*.json against the previous
CI run's artifact and fail on a throughput regression beyond the threshold,
plus a longer-horizon trajectory gate that keeps the last N runs and fails
on cumulative drift -- slow per-run drips the single-step gate cannot see.

Usage:
    check_bench_regression.py --old prev/BENCH_service.json \
        --new build/BENCH_service.json [--threshold 0.25] \
        [--history hist/service.json] [--window 10]

The headline metric is auto-detected from the file shape:
  * BENCH_service.json  -> warm-cache q/s of the widest thread sweep row
    (the 8-thread warm serving number the service optimizes for).
  * BENCH_shard.json    -> uncached Exact q/s at 4 shards.
  * BENCH_kernels.json  -> kernel-path AND q/s on the skewed microbench.
  * BENCH_disk.json     -> modeled NRA-disk q/s at 4 shards, resident
    fraction 0 (the fully disk-resident per-shard-device row).
  * BENCH_workload.json -> sequential-replay q/s of the feedback-placement
    phase on the recorded trace.
  * BENCH_subscribe.json -> end-to-end ingest batches/s with the standing-
    query fan-out active (incremental delta path, re-mine fallback priced
    in).

Latency gate: tail latency is part of the serving contract, so some
percentile columns are gated alongside throughput (lower is better; fail
when the new value exceeds the baseline by more than the threshold AND by
more than a small absolute floor, so micro-run jitter on near-zero values
cannot fail CI):
  * BENCH_workload.json -> replay p50/p95/p99.
  * BENCH_service.json  -> warm p95/p99 of the widest thread sweep row.
p999 and the mixed read/update block stay informational -- too few
samples per run to gate.

A missing or unparsable baseline skips the single-step gate (exit 0) -- the
first run of a repository has nothing to compare against; the freshly
uploaded artifact becomes the next run's baseline.

With --history, the headline value is appended to a rolling JSON artifact
(trimmed to the last --window runs, current run included) and the gate
additionally fails when the current value has drifted more than the
threshold below the best value in the window. The updated history file is
written back in place so CI can re-upload it as the next run's artifact.
"""

import argparse
import json
import sys


LATENCY_FLOOR_MS = 0.05


def headline(data):
    """Returns (metric_name, value) for a parsed bench JSON."""
    if "subscription" in data:
        sub = data["subscription"]
        return ("incremental standing-query batches/s with %d subscriptions"
                % sub.get("subscriptions", 0), sub["batches_per_sec"])
    if "placement" in data and "replay" in data:
        return ("feedback-placement replay q/s on the workload trace",
                data["replay"]["qps"])
    if "warm_sweep" in data:
        rows = data["warm_sweep"]
        if not rows:
            return None
        row = max(rows, key=lambda r: r.get("threads", 0))
        return ("warm-cache q/s at %d threads" % row["threads"], row["qps"])
    if "kernel_and_skewed_qps" in data:
        return ("kernel AND q/s on the skewed microbench",
                data["kernel_and_skewed_qps"])
    if "disk_sweep" in data:
        for row in data["disk_sweep"]:
            if row.get("shards") == 4 and row.get("fraction") == 0:
                return ("modeled NRA-disk q/s at 4 shards (fraction 0)",
                        row["modeled_qps"])
        return None
    if "sweep" in data:
        for row in data["sweep"]:
            if row.get("shards") == 4:
                return ("uncached Exact q/s at 4 shards", row["exact_qps"])
        return None
    return None


def gated_latencies(data):
    """Returns {column_name: value_ms} for the latency columns under the
    regression gate (see the module docstring for which and why)."""
    out = {}
    if "placement" in data and isinstance(data.get("replay"), dict):
        replay = data["replay"]
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            if isinstance(replay.get(key), (int, float)):
                out[f"workload replay {key[:-3]}"] = replay[key]
    rows = data.get("warm_sweep")
    if isinstance(rows, list) and rows:
        row = max(rows, key=lambda r: r.get("threads", 0))
        for key in ("p95_ms", "p99_ms"):
            if isinstance(row.get(key), (int, float)):
                out[f"warm {key[:-3]} at {row.get('threads')} threads"] = \
                    row[key]
    return out


def report_tail_latency(data, label):
    """Prints the non-gated tail-latency columns informationally: warm
    p50/p999 (the gated warm p95/p99 print from check_latency_gates) and
    every percentile of the mixed read/update block -- too few samples
    per run to gate."""
    def fmt(row, keys):
        cols = []
        for key in keys:
            if isinstance(row.get(key), (int, float)):
                cols.append(f"{key[:-3]}={row[key]:.3f}ms")
        return " ".join(cols)

    rows = data.get("warm_sweep")
    if isinstance(rows, list) and rows:
        row = max(rows, key=lambda r: r.get("threads", 0))
        line = fmt(row, ("p50_ms", "p999_ms"))
        if line:
            print(f"tail latency ({label}, warm at {row.get('threads')} "
                  f"threads, informational): {line}")
    mixed = data.get("mixed")
    if isinstance(mixed, dict):
        line = fmt(mixed, ("p50_ms", "p95_ms", "p99_ms", "p999_ms"))
        if line:
            print(f"tail latency ({label}, mixed read/update, "
                  f"informational): {line}")


def report_overload(data, label):
    """Prints BENCH_service.json's overload block informationally: the
    shed rate under 2x-capacity open-loop arrivals and the p99 of the
    queries the admission gate let through. Both depend on the runner's
    momentary capacity measurement, so they are reported for the log and
    artifact diff but never gated."""
    overload = data.get("overload")
    if not isinstance(overload, dict):
        return
    fields = []
    for key, fmt in (("offered_qps", "offered=%.0fq/s"),
                     ("shed_rate", "shed_rate=%.1f%%"),
                     ("deadline_rate", "deadline_rate=%.1f%%"),
                     ("p99_admitted_ms", "p99_admitted=%.3fms")):
        value = overload.get(key)
        if isinstance(value, (int, float)):
            if key.endswith("_rate"):
                value *= 100.0
            fields.append(fmt % value)
    if fields:
        print(f"overload at 2x capacity ({label}, informational): "
              + " ".join(fields))


def report_placement(data, label):
    """Prints BENCH_workload.json's placement differential and paced
    open-loop columns informationally (the bench itself enforces the
    differential under PM_WORKLOAD_ENFORCE; paced sojourns include queue
    delay and vary with runner load, so neither is re-gated here)."""
    placement = data.get("placement")
    if isinstance(placement, dict):
        print(f"placement ({label}, informational): "
              f"static={placement.get('static_blocks')} "
              f"feedback={placement.get('feedback_blocks')} blocks "
              f"(ratio {placement.get('ratio')}, "
              f"refreshes {placement.get('refreshes')}, "
              f"identical_results={placement.get('identical_results')}, "
              f"deterministic_replay={placement.get('deterministic_replay')})")
    paced = data.get("paced")
    if isinstance(paced, dict):
        cols = " ".join(f"{k[:-3]}={paced[k]:.3f}ms"
                        for k in ("p50_ms", "p95_ms", "p99_ms")
                        if isinstance(paced.get(k), (int, float)))
        if cols:
            print(f"paced open-loop sojourn ({label}, informational): {cols}")


def check_latency_gates(old_path, new_data, threshold):
    """Latency counterpart of check_single_step: lower is better, so the
    gate fails when a gated column exceeds the baseline by more than the
    threshold AND by more than LATENCY_FLOOR_MS absolute (sub-floor
    values are pure scheduler jitter at bench scale). Returns 1 on
    regression, else 0."""
    new_latencies = gated_latencies(new_data)
    if not new_latencies:
        return 0
    old_data = load(old_path)
    if old_data is None:
        print("no baseline; skipping latency gate")
        return 0
    old_latencies = gated_latencies(old_data)
    status = 0
    for name, new_value in new_latencies.items():
        old_value = old_latencies.get(name)
        if not isinstance(old_value, (int, float)) or old_value <= 0:
            print(f"{name}: current {new_value:.3f}ms (no baseline column; "
                  "not gated this run)")
            continue
        change = (new_value - old_value) / old_value
        print(f"{name}: previous {old_value:.3f}ms -> current "
              f"{new_value:.3f}ms ({change:+.1%}, gated at +{threshold:.0%} "
              f"and +{LATENCY_FLOOR_MS:.2f}ms)")
        if (new_value > old_value * (1.0 + threshold)
                and new_value - old_value > LATENCY_FLOOR_MS):
            print(f"FAIL: {name} regressed beyond {threshold:.0%}")
            status = 1
    if status == 0:
        print("OK: gated latency columns within budget")
    return status


def report_measured_io(data, label):
    """Prints the measured (mmap-backed) tier fields of BENCH_disk.json
    informationally. Cold-open time and first-touch I/O are real wall
    clock / page faults, so they vary with the runner's cache state and
    are reported for the log and artifact diff but never gated."""
    measured = data.get("measured")
    if not isinstance(measured, dict) or not measured.get("ok"):
        return
    fields = []
    for key, fmt in (("cold_open_ms", "cold_open=%.2fms"),
                     ("file_bytes", "file=%dB"),
                     ("queries", "queries=%d"),
                     ("disk_ms", "io=%.2fms"),
                     ("blocks", "blocks=%d"),
                     ("seeks", "seeks=%d"),
                     ("bytes", "bytes=%d")):
        if isinstance(measured.get(key), (int, float)):
            fields.append(fmt % measured[key])
    if fields:
        print(f"measured mmap tier ({label}, informational): "
              + " ".join(fields))


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"note: cannot read {path}: {e}")
        return None


def check_single_step(old_path, name, new_value, threshold):
    """Previous-artifact gate; returns 1 on regression, else 0."""
    old_data = load(old_path)
    if old_data is None:
        print(f"no baseline at {old_path}; skipping single-step gate "
              "(this run's artifact becomes the baseline)")
        return 0
    old_metric = headline(old_data)
    if old_metric is None:
        print(f"baseline {old_path} has no recognizable metric; "
              "skipping single-step gate")
        return 0
    _, old_value = old_metric
    if old_value <= 0:
        print(f"baseline {name} is {old_value}; skipping single-step gate")
        return 0

    change = (new_value - old_value) / old_value
    floor = old_value * (1.0 - threshold)
    print(f"{name}: previous {old_value:.1f} -> current {new_value:.1f} "
          f"({change:+.1%}, floor {floor:.1f} at -{threshold:.0%})")
    if new_value < floor:
        print(f"FAIL: single-step regression beyond {threshold:.0%}")
        return 1
    print("OK: within single-step regression budget")
    return 0


def check_trajectory(history_path, name, new_value, threshold, window):
    """Rolling-window gate: appends the run, trims to `window`, fails when
    the current value drifted more than `threshold` below the window's
    best. Returns 1 on cumulative regression, else 0."""
    history = load(history_path)
    if not isinstance(history, dict) or "runs" not in history:
        history = {"metric": name, "runs": []}
    runs = [r for r in history.get("runs", [])
            if isinstance(r, dict) and isinstance(r.get("value"), (int, float))]
    prior = runs[-(window - 1):] if window > 1 else []
    runs = prior + [{"value": new_value}]
    history["metric"] = name
    history["runs"] = runs
    try:
        with open(history_path, "w", encoding="utf-8") as f:
            json.dump(history, f, indent=2)
            f.write("\n")
    except OSError as e:
        print(f"note: cannot write history {history_path}: {e}")

    if len(runs) < 2:
        print(f"trajectory: {len(runs)} run(s) recorded; gate needs 2+")
        return 0
    best = max(r["value"] for r in runs)
    if best <= 0:
        print("trajectory: window best is non-positive; skipping gate")
        return 0
    drift = (best - new_value) / best
    print(f"trajectory: current {new_value:.1f} vs window best {best:.1f} "
          f"over last {len(runs)} run(s) ({-drift:+.1%})")
    if drift > threshold:
        print(f"FAIL: cumulative drift beyond {threshold:.0%} "
              f"over the {len(runs)}-run window")
        return 1
    print("OK: within trajectory budget")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--old", required=True, help="previous run's JSON")
    parser.add_argument("--new", required=True, help="this run's JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop (default 0.25), "
                        "applied to both gates")
    parser.add_argument("--history", default=None,
                        help="rolling history JSON (appended in place)")
    parser.add_argument("--window", type=int, default=10,
                        help="runs kept in the history window (default 10)")
    args = parser.parse_args()

    new_data = load(args.new)
    if new_data is None:
        print(f"FAIL: {args.new} missing -- the bench did not produce output")
        return 1
    new_metric = headline(new_data)
    if new_metric is None:
        print(f"FAIL: {args.new} has no recognizable headline metric")
        return 1
    name, new_value = new_metric
    report_tail_latency(new_data, "current")
    report_overload(new_data, "current")
    report_measured_io(new_data, "current")
    report_placement(new_data, "current")

    status = check_single_step(args.old, name, new_value, args.threshold)
    status |= check_latency_gates(args.old, new_data, args.threshold)
    if args.history:
        status |= check_trajectory(args.history, name, new_value,
                                   args.threshold, max(args.window, 1))
    return status


if __name__ == "__main__":
    sys.exit(main())
