#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_*.json against the previous
CI run's artifact and fail on a throughput regression beyond the threshold.

Usage:
    check_bench_regression.py --old prev/BENCH_service.json \
        --new build/BENCH_service.json [--threshold 0.25]

The headline metric is auto-detected from the file shape:
  * BENCH_service.json -> warm-cache q/s of the widest thread sweep row
    (the 8-thread warm serving number the service optimizes for).
  * BENCH_shard.json   -> uncached Exact q/s at 4 shards.

A missing or unparsable baseline skips the gate (exit 0) -- the first run
of a repository has nothing to compare against; the freshly uploaded
artifact becomes the next run's baseline.
"""

import argparse
import json
import sys


def headline(data):
    """Returns (metric_name, value) for a parsed bench JSON."""
    if "warm_sweep" in data:
        rows = data["warm_sweep"]
        if not rows:
            return None
        row = max(rows, key=lambda r: r.get("threads", 0))
        return ("warm-cache q/s at %d threads" % row["threads"], row["qps"])
    if "sweep" in data:
        for row in data["sweep"]:
            if row.get("shards") == 4:
                return ("uncached Exact q/s at 4 shards", row["exact_qps"])
        return None
    return None


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"note: cannot read {path}: {e}")
        return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--old", required=True, help="previous run's JSON")
    parser.add_argument("--new", required=True, help="this run's JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop (default 0.25)")
    args = parser.parse_args()

    new_data = load(args.new)
    if new_data is None:
        print(f"FAIL: {args.new} missing -- the bench did not produce output")
        return 1
    new_metric = headline(new_data)
    if new_metric is None:
        print(f"FAIL: {args.new} has no recognizable headline metric")
        return 1

    old_data = load(args.old)
    if old_data is None:
        print(f"no baseline at {args.old}; skipping gate "
              "(this run's artifact becomes the baseline)")
        return 0
    old_metric = headline(old_data)
    if old_metric is None:
        print(f"baseline {args.old} has no recognizable metric; skipping gate")
        return 0

    name, new_value = new_metric
    _, old_value = old_metric
    if old_value <= 0:
        print(f"baseline {name} is {old_value}; skipping gate")
        return 0

    change = (new_value - old_value) / old_value
    floor = old_value * (1.0 - args.threshold)
    print(f"{name}: previous {old_value:.1f} -> current {new_value:.1f} "
          f"({change:+.1%}, floor {floor:.1f} at -{args.threshold:.0%})")
    if new_value < floor:
        print(f"FAIL: regression beyond {args.threshold:.0%}")
        return 1
    print("OK: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
