#!/usr/bin/env python3
"""Docs link check: every relative markdown link in README.md and docs/
must resolve to a file (or a directory) in the repository, so the
architecture book cannot silently rot as files move. Additionally, every
docs/*.md page must be *reachable* -- linked from README.md or from
another docs page -- so new chapters cannot be orphaned off the book's
navigation.

Checked: inline links/images `[text](target)` whose target is neither an
absolute URL (scheme://... or mailto:) nor a pure in-page anchor (#...).
A `path#anchor` target is checked for the path part only -- anchors are
not validated. Code fences are skipped so example snippets cannot
produce false positives.

Usage: check_docs_links.py [repo-root]    (default: cwd)
Exit 1 when any link is broken, listing every offender.
"""

import pathlib
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def targets(path):
    """Yields (lineno, target) for every checkable link in a file."""
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            yield lineno, target.split("#", 1)[0]


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    sources = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    broken = []
    checked = 0
    linked = {}  # resolved target -> set of source pages linking to it
    for source in sources:
        if not source.exists():
            broken.append(f"{source}: expected file missing")
            continue
        for lineno, target in targets(source):
            checked += 1
            resolved = (source.parent / target).resolve()
            if not resolved.exists():
                rel = source.relative_to(root)
                broken.append(f"{rel}:{lineno}: broken link -> {target}")
            else:
                linked.setdefault(resolved, set()).add(source)
    for page in sorted((root / "docs").glob("*.md")):
        inbound = linked.get(page.resolve(), set()) - {page}
        if not inbound:
            broken.append(f"{page.relative_to(root)}: orphan page -- not "
                          "linked from README.md or any other docs page")
    for line in broken:
        print(line)
    if broken:
        print(f"FAIL: {len(broken)} broken link(s) "
              f"across {len(sources)} file(s)")
        return 1
    print(f"docs links OK: {checked} relative link(s) "
          f"across {len(sources)} file(s) resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
